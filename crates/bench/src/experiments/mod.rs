//! Experiment implementations (E1–E9 of DESIGN.md §3). Each module's
//! `run()` regenerates one table/figure/worked example of the paper.

pub mod e10_ablation_shares;
pub mod e11_ablation_skew;
pub mod e12_sampling;
pub mod e13_multi_round;
pub mod e1_cartesian;
pub mod e2_example33;
pub mod e3_example37;
pub mod e4_skewfree_hc;
pub mod e5_hashing;
pub mod e6_skew_join;
pub mod e7_residual_bounds;
pub mod e8_general_skew;
pub mod e9_replication;

/// Run every experiment in order.
pub fn run_all() {
    e1_cartesian::run();
    e2_example33::run();
    e3_example37::run();
    e4_skewfree_hc::run();
    e5_hashing::run();
    e6_skew_join::run();
    e7_residual_bounds::run();
    e8_general_skew::run();
    e9_replication::run();
    e10_ablation_shares::run();
    e11_ablation_skew::run();
    e12_sampling::run();
    e13_multi_round::run();
}
