//! E3 — Example 3.7: the packing-vertex table for the triangle query.
//!
//! `pk(C3)` has four vertices; each yields a different `L(u, M, p)`, the
//! load/lower bound is their maximum, and the winning vertex switches with
//! the cardinality regime. Also checks Theorem 3.6 (`L_lower = L_upper`)
//! numerically in every regime.

use crate::table::{fmt, Table};
use mpc_core::{bounds, shares::ShareAllocation};
use mpc_query::named;
use mpc_stats::SimpleStatistics;

/// Run E3.
pub fn run() {
    let q = named::cycle(3);
    let p = 64usize;
    let regimes: Vec<(&str, [usize; 3])> = vec![
        ("balanced", [1 << 16, 1 << 16, 1 << 16]),
        ("S1 giant", [1 << 24, 1 << 12, 1 << 12]),
        ("S2 giant", [1 << 12, 1 << 24, 1 << 12]),
        ("mixed", [1 << 20, 1 << 16, 1 << 12]),
    ];

    let t = Table::new(
        "E3: Example 3.7 — L(u, M, p) per pk(C3) vertex, p = 64 (bits)",
        &[
            "regime",
            "(1/2,1/2,1/2)",
            "(1,0,0)",
            "(0,1,0)",
            "(0,0,1)",
            "max = bound",
            "LP (5)",
        ],
    );
    for (name, cards) in regimes {
        let st = SimpleStatistics::synthetic(&[2, 2, 2], cards.to_vec(), 1 << 26);
        let table = bounds::packing_load_table(&q, &st, p);
        let find = |u: &[f64]| {
            table
                .iter()
                .find(|(v, _)| v.to_f64() == u)
                .map(|(_, l)| *l)
                .unwrap_or(f64::NAN)
        };
        let half = find(&[0.5, 0.5, 0.5]);
        let u1 = find(&[1.0, 0.0, 0.0]);
        let u2 = find(&[0.0, 1.0, 0.0]);
        let u3 = find(&[0.0, 0.0, 1.0]);
        let (lower, _) = bounds::l_lower(&q, &st, p);
        let lp = ShareAllocation::optimize(&q, &st, p)
            .unwrap()
            .predicted_load_bits();
        assert!(
            (lower - lp).abs() / lp < 1e-5,
            "{name}: Theorem 3.6 violated ({lower} vs {lp})"
        );
        t.row(&[
            name.to_string(),
            fmt(half),
            fmt(u1),
            fmt(u2),
            fmt(u3),
            fmt(lower),
            fmt(lp),
        ]);
    }
    println!(
        "shape: the fractional vertex wins when balanced; a unit vertex wins when its\n\
         relation dominates; 'max = bound' always equals the LP optimum (Theorem 3.6)."
    );
}
