//! E11 (ablation) — why the H12 cartesian grid exists.
//!
//! When a value is heavy on *both* sides, Section 4.1 computes its residual
//! cartesian product on a `p1 × p2` grid (load `~sqrt(m1(h)m2(h)/p_h)`).
//! The obvious simpler treatment — keep partitioning one side and broadcast
//! the other, as for one-sided hitters — costs `Θ(m2(h))` per server. This
//! ablation plants an H12 value of growing frequency and measures both
//! variants.

use crate::table::{fmt, fmt_ratio, Table};
use mpc_core::skew_join::{SkewJoin, SkewJoinConfig};
use mpc_core::verify;
use mpc_data::{generators, Database, Rng};
use mpc_query::named;

/// Run E11.
pub fn run() {
    let q = named::two_way_join();
    let n = 1u64 << 14;
    let m = 1usize << 14;
    let p = 64usize;

    let t = Table::new(
        "E11 (ablation): H12 grid vs broadcast fallback, m = 16384, p = 64 (max tuples)",
        &[
            "h12 freq",
            "with grid",
            "no grid",
            "grid gain",
            "sqrt(f1 f2/p)",
        ],
    );
    for frac in [8usize, 4, 2] {
        let heavy = m / frac;
        let mut rng = Rng::seed_from_u64(111);
        let degrees: Vec<(Vec<u64>, usize)> = std::iter::once((vec![5u64], heavy))
            .chain((0..(m - heavy) as u64).map(|i| (vec![100 + i], 1)))
            .collect();
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &degrees, n, &mut rng);
        let s2 = generators::from_degree_sequence("S2", 2, &[1], &degrees, n, &mut rng);
        let db = Database::new(q.clone(), vec![s1, s2], n).unwrap();

        let with = SkewJoin::plan(&db, p, 3);
        let (c1, r1) = with.run(&db);
        let without = SkewJoin::plan_with(&db, p, 3, SkewJoinConfig { use_grids: false });
        let (c2, r2) = without.run(&db);
        // Both remain correct — only the load differs.
        if frac == 4 {
            verify::assert_complete(&db, &c1);
            verify::assert_complete(&db, &c2);
        }
        let grid_bound = ((heavy * heavy) as f64 / p as f64).sqrt();
        t.row(&[
            heavy.to_string(),
            fmt(r1.max_load_tuples() as f64),
            fmt(r2.max_load_tuples() as f64),
            fmt_ratio(r2.max_load_tuples() as f64 / r1.max_load_tuples() as f64),
            fmt(grid_bound),
        ]);
    }
    println!(
        "shape: the broadcast fallback's load grows linearly with the H12 frequency\n\
         while the grid's grows as its square root — the gap ('grid gain') widens\n\
         exactly as Section 4.1 predicts."
    );
}
