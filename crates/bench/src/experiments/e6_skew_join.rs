//! E6 — Section 4.1: the skew join vs the standard hash join vs resilient
//! HC across a Zipf sweep, against the Eq. (10) lower bound.
//!
//! The paper's story: hash join degrades linearly with the top frequency,
//! plain HC is capped at `~m/p^{1/3}`, and the skew join tracks
//! `max(m/p, L1, L2, L12)` within `O(log p)`.

use crate::table::{fmt, Table};
use crate::workloads::skewed_join_db;
use mpc_core::bounds::skew_join_bound;
use mpc_core::engine::{Algorithm, Engine};
use mpc_query::named;

/// Run E6.
pub fn run() {
    let q = named::two_way_join();
    let p = 64usize;
    let m = 60_000usize;
    let n = 1u64 << 16;

    let t = Table::new(
        "E6: Section 4.1 skew join vs baselines, m = 60000, p = 64 (max tuples/server)",
        &[
            "theta",
            "hash join",
            "HC equal",
            "skew join",
            "Eq.(10)",
            "skew/Eq10",
            "#heavy",
        ],
    );
    // One engine per column; the engine's default hash variable is the
    // most-shared one, i.e. z — exactly the classical join key.
    let engine = Engine::new(&q).p(p);
    for theta in [0.0f64, 0.5, 1.0, 1.5, 2.0] {
        let db = skewed_join_db(&q, m, n, theta, 800, 61 + theta as u64);

        let hash = engine
            .clone()
            .seed(1)
            .algorithm(Algorithm::HashJoin)
            .run(&db);
        let hc = engine
            .clone()
            .seed(2)
            .algorithm(Algorithm::HyperCubeEqual)
            .run(&db);
        let plan = engine
            .clone()
            .seed(3)
            .algorithm(Algorithm::SkewJoin)
            .plan(&db);
        let sj = plan.execute(&db, mpc_sim::backend::Backend::from_env());
        if theta == 1.0 {
            // Full correctness audit at one representative skew level (the
            // others are covered by the integration tests at smaller m).
            assert!(sj.verify(&db).is_complete(), "skew join lost answers");
        }
        let sj_rep = sj.report().expect("one-round outcome");

        let f1 = db.relation(0).frequencies(&[1]);
        let f2 = db.relation(1).frequencies(&[1]);
        let bound = skew_join_bound(m, m, &f1, &f2, p);
        t.row(&[
            theta.to_string(),
            fmt(hash.report().expect("one-round").max_load_tuples() as f64),
            fmt(hc.report().expect("one-round").max_load_tuples() as f64),
            fmt(sj_rep.max_load_tuples() as f64),
            fmt(bound.max_tuples()),
            format!(
                "{:.1}x",
                sj_rep.max_load_tuples() as f64 / bound.max_tuples()
            ),
            plan.num_heavy().expect("skew-join plan").to_string(),
        ]);
    }
    println!(
        "shape: hash join grows with the hot z frequency toward m; HC-equal plateaus\n\
         near 2m/p^(1/3); the skew join stays within a small multiple of Eq. (10)\n\
         across the whole sweep — the Section 4.1 optimality claim."
    );
}
