//! E10 (ablation) — share optimization objective: LP (5)'s *maximum* load
//! vs Afrati–Ullman's *total* load (Section 3.1: "Afrati and Ullman compute
//! the shares by optimizing the total load ... Here we take a different
//! approach").
//!
//! On symmetric statistics the two coincide; with unequal cardinalities the
//! AU optimum can leave one relation's residual load far above the LP
//! optimum — the reason the paper's analysis is built on LP (5).

use crate::table::{fmt, fmt_ratio, Table};
use mpc_core::shares::ShareAllocation;
use mpc_query::named;
use mpc_stats::SimpleStatistics;

/// Run E10.
pub fn run() {
    let q = named::cycle(3);
    let p = 64usize;
    let t = Table::new(
        "E10 (ablation): LP(5) max-load shares vs Afrati–Ullman total-load shares, C3, p = 64",
        &[
            "cardinalities",
            "LP max bits",
            "AU max bits",
            "AU/LP",
            "LP shares",
            "AU shares",
        ],
    );
    for cards in [
        vec![1usize << 16, 1 << 16, 1 << 16],
        vec![1 << 20, 1 << 14, 1 << 14],
        vec![1 << 22, 1 << 16, 1 << 10],
        vec![1 << 24, 1 << 12, 1 << 12],
    ] {
        let st = SimpleStatistics::synthetic(&[2, 2, 2], cards.clone(), 1 << 26);
        let lp = ShareAllocation::optimize(&q, &st, p).unwrap();
        let au = ShareAllocation::afrati_ullman(&q, &st, p);
        let lp_load = lp.expected_load_bits(&q, &st);
        let au_load = au.expected_load_bits(&q, &st);
        t.row(&[
            format!(
                "2^{:?}",
                cards.iter().map(|c| c.ilog2()).collect::<Vec<_>>()
            ),
            fmt(lp_load),
            fmt(au_load),
            fmt_ratio(au_load / lp_load),
            format!("{:?}", lp.shares),
            format!("{:?}", au.shares),
        ]);
    }
    println!(
        "finding: the two optimizers reach the same maximum load on every regime (the\n\
         share vectors may differ along flat directions of the optimum). This is not an\n\
         accident: loads are exponential in the share exponents, so minimizing the\n\
         total (a log-sum-exp) tracks minimizing the max within a factor ℓ. The paper's\n\
         LP (5) formulation is preferred not because AU is wrong but because the LP's\n\
         dual yields the closed form over pk(q) (Theorem 3.6) and the matching lower\n\
         bound — which no Lagrange-multiplier derivation provides."
    );
}
