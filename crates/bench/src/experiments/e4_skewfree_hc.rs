//! E4 — Theorem 3.4: on skew-free databases the HC algorithm's measured
//! maximum load is `O(L_upper · polylog p)` with `L_upper = p^λ` from
//! LP (5), which by Theorem 3.6 equals the lower bound — so measured/bound
//! ratios must sit in a narrow band across queries, cardinalities and `p`.

use crate::table::{fmt, fmt_ratio, Table};
use crate::workloads::matching_db;
use mpc_core::engine::{Algorithm, Engine};
use mpc_query::named;

/// Run E4.
pub fn run() {
    let t = Table::new(
        "E4: Theorem 3.4 — measured HC load vs L_upper on skew-free (matching) data",
        &[
            "query",
            "p",
            "measured bits",
            "L_upper",
            "ratio",
            "complete",
        ],
    );
    let queries = vec![
        named::two_way_join(),
        named::cycle(3),
        named::cycle(4),
        named::chain(3),
        named::star(3),
        named::cartesian(2),
        named::loomis_whitney(4),
    ];
    for q in queries {
        let m = 1usize << 13;
        let n = 1u64 << 16;
        let db = matching_db(&q, m, n, 41);
        for p in [16usize, 64, 256] {
            let outcome = Engine::new(&q)
                .p(p)
                .seed(17)
                .algorithm(Algorithm::HyperCube)
                .run(&db);
            let complete = outcome.verify(&db).is_complete();
            // By Theorem 3.6 the LP prediction p^λ *is* L_lower = L_upper.
            let lupper = outcome.lower_bound_bits();
            let measured = outcome.max_load_bits() as f64;
            t.row(&[
                q.name().to_string(),
                p.to_string(),
                fmt(measured),
                fmt(lupper),
                fmt_ratio(measured / lupper),
                complete.to_string(),
            ]);
            assert!(complete, "{} p={p}: lost answers", q.name());
        }
    }
    println!(
        "shape: every ratio lies in [~2, ~5] — within the constant+polylog band of\n\
         Theorem 3.4 — flat across a 16x sweep of p, and every run is complete.\n\
         (Ratios above 1 reflect integer share rounding and hash variance, both\n\
         covered by the theorem's polylog factor; higher-arity queries like C4/LW4\n\
         pay a slightly larger constant, matching the ln^k p dependence.)"
    );
}
