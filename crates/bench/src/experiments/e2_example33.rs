//! E2 — Example 3.3: the two HC share allocations for the join
//! `q(x,y,z) = S1(x,z), S2(y,z)` on skew-free vs fully-skewed data.
//!
//! * shares `(p^{1/3}, p^{1/3}, p^{1/3})`: `O(m/p^{2/3})` skew-free, and —
//!   the resilience result, Cor. 3.2(ii) — still `O(m/p^{1/3})` on fully
//!   skewed data;
//! * shares `(1, p, 1)` (a hash join on z): `O(m/p)` skew-free but `Ω(m)`
//!   when all tuples share one `z`.

use crate::table::{fmt, Table};
use mpc_core::hypercube::HyperCube;
use mpc_core::shares::ShareAllocation;
use mpc_data::{generators, Database, Rng};
use mpc_query::named;

/// Run E2.
pub fn run() {
    let q = named::two_way_join();
    let n = 1u64 << 14;
    let m = 1usize << 13;
    let z = q.var_index("z").unwrap();

    let mut rng = Rng::seed_from_u64(31);
    let skew_free = Database::new(
        q.clone(),
        vec![
            generators::matching("S1", 2, m, n, &mut rng),
            generators::matching("S2", 2, m, n, &mut rng),
        ],
        n,
    )
    .unwrap();
    let skewed = Database::new(
        q.clone(),
        vec![
            generators::single_value_column("S1", 2, m, n, 1, 7, &mut rng),
            generators::single_value_column("S2", 2, m, n, 1, 7, &mut rng),
        ],
        n,
    )
    .unwrap();

    let t = Table::new(
        "E2: Example 3.3 — join, cube shares (p^1/3 each) vs hash-join shares (1,p,1), m = 8192",
        &[
            "p",
            "cube free",
            "m/p^2/3",
            "hash free",
            "m/p",
            "cube skew",
            "m/p^1/3",
            "hash skew",
        ],
    );
    for p in [8usize, 27, 64, 125] {
        let cube = HyperCube::with_equal_shares(&q, p, 5);
        let mut hj_shares = vec![1usize; 3];
        hj_shares[z] = p;
        let hash = HyperCube::new(&q, &ShareAllocation::explicit(hj_shares, p), 5);

        let (_, cf) = cube.run(&skew_free);
        let (_, hf) = hash.run(&skew_free);
        let (_, cs) = cube.run(&skewed);
        let (_, hs) = hash.run(&skewed);
        let mf = 2.0 * m as f64;
        t.row(&[
            p.to_string(),
            fmt(cf.max_load_tuples() as f64),
            fmt(mf / (p as f64).powf(2.0 / 3.0)),
            fmt(hf.max_load_tuples() as f64),
            fmt(mf / p as f64),
            fmt(cs.max_load_tuples() as f64),
            fmt(mf / (p as f64).powf(1.0 / 3.0)),
            fmt(hs.max_load_tuples() as f64),
        ]);
    }
    println!(
        "shape: 'hash skew' is pinned at 2m = {} regardless of p (the collapse), while\n\
         'cube skew' tracks m/p^1/3 — the HC resilience of Corollary 3.2(ii).",
        2 * m
    );
}
