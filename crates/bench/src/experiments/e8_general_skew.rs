//! E8 — Section 4.2 / Theorem 4.6: the general bin-combination algorithm on
//! multi-attribute skew, vs skew-oblivious HyperCube, vs the per-combination
//! prediction `max_B p^{λ(B)}`.

use crate::table::{fmt, fmt_ratio, Table};
use mpc_core::engine::{Algorithm, Engine};
use mpc_data::{generators, Database, Relation, Rng};
use mpc_query::named;
use mpc_sim::backend::Backend;

/// Joint heavy pair inside S1 of the triangle + hot z on the star.
fn workloads() -> Vec<(&'static str, Database)> {
    let mut out = Vec::new();

    // Triangle with an *aligned* heavy x1 in both S1 and S3 — the
    // Example 4.8 scenario whose residual handler is a per-hitter
    // cartesian grid on (x2, x3).
    {
        let q = named::cycle(3);
        let n = 1u64 << 12;
        let m = 1usize << 13;
        let mut rng = Rng::seed_from_u64(81);
        let degrees: Vec<(Vec<u64>, usize)> = std::iter::once((vec![5u64], m / 2))
            .chain((0..(m / 2) as u64).map(|i| (vec![100 + (i % (n - 100))], 1)))
            .collect();
        // x1 is position 0 of S1 and position 1 of S3.
        let s1 = generators::from_degree_sequence("S1", 2, &[0], &degrees, n, &mut rng);
        let s2 = generators::uniform("S2", 2, m, n, &mut rng);
        let s3 = generators::from_degree_sequence("S3", 2, &[1], &degrees, n, &mut rng);
        out.push((
            "C3 heavy x1 (Ex 4.8)",
            Database::new(q, vec![s1, s2, s3], n).unwrap(),
        ));
    }

    // Star(2) with a hot shared z in one ray.
    {
        let q = named::star(2);
        let n = 1u64 << 12;
        let m = 1usize << 13;
        let mut rng = Rng::seed_from_u64(82);
        let mut s1 = Relation::with_capacity("S1", 2, m);
        for _ in 0..m / 2 {
            s1.push(&[rng.below(n), 9]);
        }
        for _ in 0..m / 2 {
            s1.push(&[rng.below(n), rng.below(n)]);
        }
        let s2 = generators::matching("S2", 2, m.min(n as usize), n, &mut rng);
        out.push(("Star2 hot z", Database::new(q, vec![s1, s2], n).unwrap()));
    }

    // Join with double-sided zipf (the Section 4.1 case, via 4.2 machinery).
    {
        let q = named::two_way_join();
        let db = crate::workloads::skewed_join_db(&q, 1 << 13, 1 << 13, 1.2, 400, 83);
        out.push(("join θ=1.2", db));
    }
    out
}

/// Run E8.
pub fn run() {
    let p = 64usize;
    let t = Table::new(
        "E8: Section 4.2 general algorithm vs oblivious HC (bits/server), p = 64",
        &[
            "workload",
            "HC oblivious",
            "general alg",
            "gen/HC",
            "max p^λ(B)",
            "combos",
            "dropped",
        ],
    );
    for (name, db) in workloads() {
        let q = db.query().clone();
        let engine = Engine::new(&q).p(p).seed(7);
        let hc = engine.clone().algorithm(Algorithm::HyperCube).run(&db);
        assert!(hc.verify(&db).is_complete(), "{name}: HC lost answers");

        let plan = engine.clone().algorithm(Algorithm::GeneralSkew).plan(&db);
        let gen = plan.execute(&db, Backend::from_env());
        assert!(
            gen.verify(&db).is_complete(),
            "{name}: general lost answers"
        );

        t.row(&[
            name.to_string(),
            fmt(hc.max_load_bits() as f64),
            fmt(gen.max_load_bits() as f64),
            fmt_ratio(gen.max_load_bits() as f64 / hc.max_load_bits() as f64),
            fmt(plan.predicted_load_bits()),
            plan.num_bin_combinations()
                .expect("general plan")
                .to_string(),
            plan.dropped_assignments()
                .expect("general plan")
                .to_string(),
        ]);
    }
    println!(
        "shape: on skewed inputs the general algorithm beats or matches oblivious HC\n\
         (gen/HC <= 1) and stays within polylog of max_B p^λ(B) (Theorem 4.6); zero\n\
         dropped assignments means the full guarantee applied."
    );
}
