//! E12 — the statistics pipeline: exact vs sampled heavy hitters.
//!
//! The paper assumes heavy hitters and (approximate) frequencies are known,
//! noting engines learn them by sampling (§1) and that factor-2 accuracy
//! suffices (§4.2). This experiment runs the §4.1 skew join planned three
//! ways — exact statistics, Bernoulli-sampled statistics at the recommended
//! rate, and *no* statistics (everything classified light = plain hash
//! join) — and shows the sampled plan recovers nearly all of the exact
//! plan's benefit at a tiny statistics cost.

use crate::table::{fmt, fmt_ratio, Table};
use crate::workloads::skewed_join_db;
use mpc_core::skew_join::{SkewJoin, SkewJoinConfig};
use mpc_core::verify;
use mpc_data::Rng;
use mpc_query::named;
use mpc_stats::sampling;

/// Run E12.
pub fn run() {
    let q = named::two_way_join();
    let p = 64usize;
    let m = 60_000usize;
    let n = 1u64 << 16;

    let t = Table::new(
        "E12: skew join planned from exact vs sampled vs no statistics, p = 64 (max tuples)",
        &[
            "theta",
            "exact stats",
            "sampled",
            "sampled/exact",
            "no stats",
            "sample size",
        ],
    );
    for theta in [1.0f64, 1.5, 2.0] {
        let db = skewed_join_db(&q, m, n, theta, 800, 121 + theta as u64);
        let mut rng = Rng::seed_from_u64(5000 + theta as u64);

        let exact = SkewJoin::plan(&db, p, 9);
        let (c_e, r_e) = exact.run(&db);
        verify::assert_complete(&db, &c_e);

        let sf1 = sampling::sample_heavy_hitters(db.relation(0), &[1], p, &mut rng);
        let sf2 = sampling::sample_heavy_hitters(db.relation(1), &[1], p, &mut rng);
        let sampled = SkewJoin::plan_with_frequencies(
            &db,
            p,
            9,
            SkewJoinConfig::default(),
            &sf1.estimates,
            &sf2.estimates,
        );
        let (c_s, r_s) = sampled.run(&db);
        verify::assert_complete(&db, &c_s);

        let empty: mpc_data::FastMap<Vec<u64>, usize> = mpc_data::FastMap::default();
        let blind =
            SkewJoin::plan_with_frequencies(&db, p, 9, SkewJoinConfig::default(), &empty, &empty);
        let (c_b, r_b) = blind.run(&db);
        verify::assert_complete(&db, &c_b);

        t.row(&[
            theta.to_string(),
            fmt(r_e.max_load_tuples() as f64),
            fmt(r_s.max_load_tuples() as f64),
            fmt_ratio(r_s.max_load_tuples() as f64 / r_e.max_load_tuples() as f64),
            fmt(r_b.max_load_tuples() as f64),
            (sf1.sample_size + sf2.sample_size).to_string(),
        ]);
    }
    println!(
        "shape: the sampled plan tracks the exact plan within a small factor while the\n\
         statistics pass touches only ~p·log(p)/m of the data; with no statistics the\n\
         algorithm degenerates to the hash join and its skew collapse. Completeness\n\
         holds in *all three* configurations — estimation error can only shift load."
    );
}
