//! E1 — Section 1's cartesian-product warm-up.
//!
//! `q(x,y) = S1(x), S2(y)` with `m1 != m2`: the optimal one-round load is
//! `Θ(sqrt(m1 m2 / p))`, achieved by a `p1 × p2` grid with
//! `p1 = sqrt(m1 p / m2)`. We sweep `p`, run HyperCube with LP-optimal
//! shares, and report measured max load against both the ideal
//! `2 sqrt(m1 m2 / p)` (upper) and `sqrt(m1 m2 / p)` (lower bound).

use crate::table::{fmt, fmt_ratio, Table};
use crate::workloads::uniform_db;
use mpc_core::hypercube::HyperCube;
use mpc_core::verify;
use mpc_query::named;
use mpc_stats::SimpleStatistics;

/// Run E1.
pub fn run() {
    let q = named::cartesian(2);
    let (m1, m2) = (1usize << 12, 1usize << 14);
    let n = 1u64 << 16;

    // Correctness at small scale (the full product is too large to
    // materialize at measurement scale).
    let small = {
        let mut db = uniform_db(&q, 256, n, 11);
        let rel2 =
            mpc_data::generators::uniform("S2", 1, 512, n, &mut mpc_data::Rng::seed_from_u64(12));
        db.replace_relation(1, rel2).unwrap();
        db
    };
    let st_small = SimpleStatistics::of(&small);
    let hc = HyperCube::with_optimal_shares(&q, &st_small, 16, 1);
    let (cluster, _) = hc.run(&small);
    verify::assert_complete(&small, &cluster);

    // Load sweep.
    let mut db = uniform_db(&q, m1, n, 13);
    let rel2 = mpc_data::generators::uniform("S2", 1, m2, n, &mut mpc_data::Rng::seed_from_u64(14));
    db.replace_relation(1, rel2).unwrap();
    let st = SimpleStatistics::of(&db);

    let t = Table::new(
        "E1: cartesian product S1 x S2 (m1=4096, m2=16384) — load vs sqrt(m1 m2 / p)",
        &[
            "p",
            "shares",
            "max tuples",
            "2√(m1m2/p)",
            "ratio",
            "lower √(m1m2/p)",
        ],
    );
    for p in [4usize, 16, 64, 256] {
        let hc = HyperCube::with_optimal_shares(&q, &st, p, 21);
        let (_, report) = hc.run(&db);
        let ideal = 2.0 * ((m1 * m2) as f64 / p as f64).sqrt();
        let lower = ideal / 2.0;
        let measured = report.max_load_tuples() as f64;
        t.row(&[
            p.to_string(),
            format!("{:?}", hc.grid().dims()),
            fmt(measured),
            fmt(ideal),
            fmt_ratio(measured / ideal),
            fmt(lower),
        ]);
    }
    println!("shape: ratio stays in a constant band (~0.5–1.5) across the whole sweep.");
}
