//! E5 — Lemma 3.1 / Appendix B: max bucket load when hashing an `r`-ary
//! relation per-attribute onto a `p1 × ... × pr` grid.
//!
//! * (2) matchings: max load `O(m/p)`;
//! * (3) degree-bounded (every value set frequency `<= a·m/Π p_i`):
//!   max load `Õ(m/p)`;
//! * (4) adversarial single-value attribute: max load pinned at
//!   `m / min_i p_i` — independent of the instance, the universal cap.

use crate::table::{fmt, fmt_ratio, Table};
use mpc_data::{generators, Rng};
use mpc_sim::hashing::{bucket_loads, summarize, HashFamily};
use mpc_sim::topology::Grid;

/// Run E5.
pub fn run() {
    let t = Table::new(
        "E5: Lemma 3.1 — max bucket load under per-attribute hashing (m = 65536)",
        &[
            "instance",
            "r",
            "grid",
            "max",
            "m/p",
            "max/(m/p)",
            "m/min p_i",
        ],
    );
    let m = 1usize << 16;
    let n = 1u64 << 20;
    let mut rng = Rng::seed_from_u64(51);

    // (2) matchings, r = 1, 2, 3.
    for (r, dims) in [(1usize, vec![64usize]), (2, vec![8, 8]), (3, vec![4, 4, 4])] {
        let rel = generators::matching("R", r, m, n, &mut rng);
        let grid = Grid::new(dims.clone());
        let s = summarize(&bucket_loads(&rel, &grid, &HashFamily::new(r, 5)));
        let p = grid.num_cells() as f64;
        t.row(&[
            "matching".into(),
            r.to_string(),
            format!("{dims:?}"),
            fmt(s.max as f64),
            fmt(m as f64 / p),
            fmt_ratio(s.max as f64 / (m as f64 / p)),
            fmt(m as f64 / *dims.iter().min().unwrap() as f64),
        ]);
    }

    // (3) degree-bounded: zipf-ish but capped below m/p_i per value.
    {
        let dims = vec![8usize, 8];
        let grid = Grid::new(dims.clone());
        let cap = m / 8 / 2; // below m/p_1
        let mut degrees: Vec<(Vec<u64>, usize)> = Vec::new();
        let mut left = m;
        let mut v = 0u64;
        while left > 0 {
            let c = cap.min(left);
            degrees.push((vec![v], c));
            left -= c;
            v += 1;
        }
        let rel = generators::from_degree_sequence("R", 2, &[0], &degrees, n, &mut rng);
        let s = summarize(&bucket_loads(&rel, &grid, &HashFamily::new(2, 6)));
        let p = grid.num_cells() as f64;
        t.row(&[
            "deg<=m/2p1".into(),
            "2".into(),
            format!("{dims:?}"),
            fmt(s.max as f64),
            fmt(m as f64 / p),
            fmt_ratio(s.max as f64 / (m as f64 / p)),
            fmt(m as f64 / 8.0),
        ]);
    }

    // (4) adversarial: one value in attribute 0.
    {
        let dims = vec![8usize, 8];
        let grid = Grid::new(dims.clone());
        let rel = generators::single_value_column("R", 2, m, n, 0, 3, &mut rng);
        let s = summarize(&bucket_loads(&rel, &grid, &HashFamily::new(2, 7)));
        let p = grid.num_cells() as f64;
        t.row(&[
            "one value".into(),
            "2".into(),
            format!("{dims:?}"),
            fmt(s.max as f64),
            fmt(m as f64 / p),
            fmt_ratio(s.max as f64 / (m as f64 / p)),
            fmt(m as f64 / 8.0),
        ]);
    }
    println!(
        "shape: matchings and degree-bounded instances stay within a small factor of\n\
         m/p; the single-value instance is pinned near m/min(p_i) = 8x m/p — exactly\n\
         Lemma 3.1's (2)/(3) vs (4) separation."
    );
}
