//! E9 — Section 5 / Theorem 5.1 / Example 5.2: replication rate vs reducer
//! size for the triangle query.
//!
//! Sweeping `p` (and hence the reducer size `L` each HC run needs), the
//! measured replication rate of HyperCube must sit above the bound
//! `r >= (L/ΣM)·max_u Π (M_j/L)^{u_j}` and scale as `sqrt(M/L)` — slope 1/2
//! on log-log axes.

use crate::table::{fmt, Table};
use crate::workloads::uniform_db;
use mpc_core::bounds;
use mpc_core::hypercube::HyperCube;
use mpc_query::named;
use mpc_stats::SimpleStatistics;

/// Run E9.
pub fn run() {
    let q = named::cycle(3);
    let n = 1u64 << 10;
    let m = 1usize << 15;
    let db = uniform_db(&q, m, n, 91);
    let st = SimpleStatistics::of(&db);
    let m_bits = st.bit_sizes[0] as f64;

    let t = Table::new(
        "E9: Theorem 5.1 — triangle replication rate vs reducer size (M per relation fixed)",
        &[
            "p",
            "L (max bits)",
            "measured r",
            "bound r",
            "sqrt(M/L)",
            "reducers >=",
        ],
    );
    let mut prev: Option<(f64, f64)> = None;
    let mut slopes = Vec::new();
    for p in [8usize, 27, 64, 216, 512] {
        let hc = HyperCube::with_equal_shares(&q, p, 19);
        let (_, report) = hc.run(&db);
        let l = report.max_load_bits() as f64;
        let r = report.replication_rate();
        let r_bound = bounds::replication_rate_bound(&q, &st, l);
        let reducers = bounds::min_reducers(&q, &st, l);
        assert!(
            r >= r_bound * 0.9,
            "p={p}: measured replication {r} below the bound {r_bound}"
        );
        if let Some((pl, pr)) = prev {
            // slope of log r vs log (M/L).
            let slope = (r / pr).ln() / ((m_bits / l) / (m_bits / pl)).ln();
            slopes.push(slope);
        }
        prev = Some((l, r));
        t.row(&[
            p.to_string(),
            fmt(l),
            fmt(r),
            fmt(r_bound),
            fmt((m_bits / l).sqrt()),
            fmt(reducers),
        ]);
    }
    let avg_slope = slopes.iter().sum::<f64>() / slopes.len() as f64;
    println!(
        "shape: measured r tracks sqrt(M/L); fitted log-log slope = {avg_slope:.2} \
         (paper: 1/2),\nand every run respects the Theorem 5.1 bound."
    );
}
