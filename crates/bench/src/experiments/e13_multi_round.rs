//! E13 — one round vs the traditional multi-round plan (§1's motivating
//! contrast).
//!
//! For each query we run (a) one-round HyperCube with LP-optimal shares and
//! (b) the classical left-deep hash-join plan (one join per round), and
//! report rounds, the maximum per-round load, and the intermediate blow-up.
//! The trade-off the introduction describes: multi-round wins per-round
//! load when intermediates are small (chains on sparse data), loses badly
//! when they explode (triangles on dense data), and always pays more
//! synchronization rounds.

use crate::table::{fmt, Table};
use crate::workloads::uniform_db;
use mpc_core::engine::{Algorithm, Engine};
use mpc_query::named;

/// Run E13.
pub fn run() {
    let p = 64usize;
    let t = Table::new(
        "E13: one-round HyperCube vs multi-round hash joins (bits/server), p = 64",
        &[
            "query",
            "HC 1-round",
            "MR max/round",
            "MR rounds",
            "max intermediate",
            "input m",
        ],
    );
    // (query, m, n): n controls density and hence intermediate size.
    let cases = vec![
        (
            "join sparse",
            named::two_way_join(),
            1usize << 13,
            1u64 << 14,
        ),
        ("L3 sparse", named::chain(3), 1 << 13, 1 << 14),
        ("C3 sparse", named::cycle(3), 1 << 13, 1 << 13),
        ("C3 dense", named::cycle(3), 1 << 13, 1 << 7),
        ("star3", named::star(3), 1 << 13, 1 << 12),
    ];
    for (label, q, m, n) in cases {
        let db = uniform_db(&q, m, n, 131);
        let engine = Engine::new(&q).p(p).seed(5);

        let hc = engine.clone().algorithm(Algorithm::HyperCube).run(&db);
        // Skip full verification on the dense triangle (the output is
        // enormous); completeness is covered at sparse scales.
        if n > 1 << 8 {
            assert!(hc.verify(&db).is_complete(), "{label}: HC lost answers");
        }

        let mr_outcome = engine.clone().algorithm(Algorithm::MultiRound).run(&db);
        if n > 1 << 8 {
            assert!(
                mr_outcome.verify(&db).is_complete(),
                "{label}: multi-round lost answers"
            );
        }
        let mr = mr_outcome.multi_round().expect("multi-round outcome");

        t.row(&[
            label.to_string(),
            fmt(hc.max_load_bits() as f64),
            fmt(mr.max_round_load_bits() as f64),
            mr.num_rounds().to_string(),
            fmt(mr.max_intermediate_tuples() as f64),
            m.to_string(),
        ]);
    }
    println!(
        "shape: on sparse joins/chains the per-round load of the classical plan is\n\
         competitive (its intermediates are small) at the price of extra rounds; on\n\
         the dense triangle the length-2-path intermediate explodes and the classical\n\
         plan's round load blows past one-round HyperCube — the paper's motivation for\n\
         single-round multiway evaluation."
    );
}
