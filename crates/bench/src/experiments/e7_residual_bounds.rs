//! E7 — Example 4.8 / Theorem 4.7: residual lower bounds from degree
//! sequences.
//!
//! For the join (`x = {z}`) and the triangle (`x = {x1}`), the residual
//! bound `L_x(u, M, p)` strictly dominates the cardinality-only bound when
//! the degree sequence is skewed, and collapses back to it (up to the `m/p`
//! floor) when degrees are uniform — "skew in the input data makes query
//! evaluation harder".

use crate::table::{fmt, fmt_ratio, Table};
use mpc_core::bounds;
use mpc_data::{generators, Database, Rng};
use mpc_query::{named, Query, VarSet};
use mpc_stats::{degree_statistics, SimpleStatistics};

fn join_with_degrees(theta: f64, m: usize, n: u64, seed: u64) -> Database {
    let q = named::two_way_join();
    let mut rng = Rng::seed_from_u64(seed);
    let d1 = generators::zipf_degrees(m, n, theta);
    let d2 = generators::zipf_degrees(m, n, theta);
    let s1 = generators::from_degree_sequence("S1", 2, &[1], &d1, n, &mut rng);
    let s2 = generators::from_degree_sequence("S2", 2, &[1], &d2, n, &mut rng);
    Database::new(q, vec![s1, s2], n).unwrap()
}

/// Triangle with a planted x1 value carrying fraction `alpha` of S1 and S3
/// (x1 sits at position 0 of S1 and position 1 of S3). The Example 4.8
/// residual bound `sqrt(Σ_h M1(h)M3(h)/p)` beats the flat bound exactly
/// when `alpha` exceeds `p^{-1/6}`·(...) — here the crossover is at
/// `alpha = 1/2` for equal sizes, so 0.5 ties and 0.9 separates.
fn triangle_with_planted(alpha: f64, m: usize, n: u64, seed: u64) -> Database {
    let q = named::cycle(3);
    let mut rng = Rng::seed_from_u64(seed);
    let heavy = (alpha * m as f64) as usize;
    let degrees = |heavy: usize| -> Vec<(Vec<u64>, usize)> {
        let mut d: Vec<(Vec<u64>, usize)> = Vec::new();
        if heavy > 0 {
            d.push((vec![5], heavy));
        }
        d.extend((0..(m - heavy) as u64).map(|i| (vec![100 + (i % (n - 100))], 1)));
        d
    };
    let s1 = generators::from_degree_sequence("S1", 2, &[0], &degrees(heavy), n, &mut rng);
    let s2 = generators::uniform("S2", 2, m, n, &mut rng);
    let s3 = generators::from_degree_sequence("S3", 2, &[1], &degrees(heavy), n, &mut rng);
    Database::new(q, vec![s1, s2, s3], n).unwrap()
}

fn report(t: &Table, label: &str, q: &Query, db: &Database, x: VarSet, p: usize) {
    let st = SimpleStatistics::of(db);
    let (flat, _) = bounds::l_lower(q, &st, p);
    let deg = degree_statistics(db, x);
    let (resid, u) = bounds::residual_lower_bound(q, &deg, p, db.value_bits(), db.domain())
        .expect("saturating packing exists");
    t.row(&[
        label.to_string(),
        x.to_string(),
        fmt(flat),
        fmt(resid),
        fmt_ratio(resid / flat),
        format!("{:?}", u.to_f64()),
    ]);
}

/// Run E7.
pub fn run() {
    let p = 64usize;
    let m = 1usize << 14;
    let n = 1u64 << 14;
    let t = Table::new(
        "E7: Theorem 4.7 residual bounds vs the cardinality-only bound (bits), p = 64",
        &[
            "workload",
            "x",
            "flat bound",
            "residual",
            "resid/flat",
            "packing u",
        ],
    );

    for theta in [0.0f64, 1.0, 1.5] {
        let db = join_with_degrees(theta, m, n, 71);
        let q = db.query().clone();
        let z = q.var_index("z").unwrap();
        report(
            &t,
            &format!("join θ={theta}"),
            &q,
            &db,
            VarSet::singleton(z),
            p,
        );
    }
    for alpha in [0.0f64, 0.5, 0.9] {
        let db = triangle_with_planted(alpha, m, n, 72);
        let q = db.query().clone();
        report(
            &t,
            &format!("C3 α={alpha}"),
            &q,
            &db,
            VarSet::singleton(0),
            p,
        );
    }
    println!(
        "shape: skew-free inputs give ratio ~1 (the residual bound degenerates to the\n\
         flat one); past the crossover (join θ>1, C3 α>1/2) the residual bound pulls\n\
         ahead — the Theorem 4.7 separation showing that skew provably increases the\n\
         required communication. The C3 crossover sits exactly at α = 1/2 (the planted\n\
         fraction where sqrt(Σ M1(h)M3(h)/p) = M/p^(2/3))."
    );
}
