//! A counting global allocator for the bench binaries.
//!
//! Wall-clock on the single-core CI host is noisy; heap-allocation counts
//! are exact and deterministic, so the flat-data-plane optimizations are
//! tracked as a *counted* number in `BENCH_*.json` (`allocs_per_iter`),
//! not just a timing delta. Each bench target installs
//! [`CountingAllocator`] as its `#[global_allocator]` and registers
//! [`alloc_count`] with the harness
//! (`mpc_testkit::criterion::set_alloc_probe`, a `fn() -> u64` probe
//! sampled around every benchmark's measured samples):
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: mpc_bench::alloc_counter::CountingAllocator =
//!     mpc_bench::alloc_counter::CountingAllocator;
//! // inside criterion_group!'s config expression:
//! mpc_testkit::criterion::set_alloc_probe(mpc_bench::alloc_counter::alloc_count);
//! ```
//!
//! Counting is a single relaxed `fetch_add` per allocator round-trip
//! (`alloc`, `alloc_zeroed`, and every `realloc` — growing or shrinking —
//! count once; `dealloc` is free), so the counter perturbs the timings it
//! rides along with by well under the harness's sampling noise.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone process-wide allocation count.
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Total heap allocations performed by the process so far.
pub fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// [`System`] with a relaxed allocation counter in front.
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotone() {
        // The test binary does not install the allocator, so only pin the
        // counter contract itself.
        let a = alloc_count();
        ALLOCS.fetch_add(3, Ordering::Relaxed);
        assert_eq!(alloc_count(), a + 3);
    }
}
