//! Shared workload builders for the experiment binaries.

use mpc_data::{generators, Database, Rng};
use mpc_query::Query;

/// One uniform relation per atom.
pub fn uniform_db(q: &Query, m: usize, n: u64, seed: u64) -> Database {
    let mut rng = Rng::seed_from_u64(seed);
    let rels = q
        .atoms()
        .iter()
        .map(|a| generators::uniform(a.name(), a.arity(), m, n, &mut rng))
        .collect();
    Database::new(q.clone(), rels, n).expect("valid uniform db")
}

/// One matching relation per atom (the skew-free extreme).
pub fn matching_db(q: &Query, m: usize, n: u64, seed: u64) -> Database {
    let mut rng = Rng::seed_from_u64(seed);
    let rels = q
        .atoms()
        .iter()
        .map(|a| generators::matching(a.name(), a.arity(), m, n, &mut rng))
        .collect();
    Database::new(q.clone(), rels, n).expect("valid matching db")
}

/// The skewed two-way-join workload used by E6: `z` Zipf(θ) in S1 with hot
/// values at the low end, Zipf(θ) in S2 with hot values at the *high* end
/// (disjoint celebrity sets, so the output stays materializable), plus one
/// shared heavy value (777 on both sides) of frequency `h12` — the H12
/// class of Section 4.1.
pub fn skewed_join_db(q: &Query, m: usize, n: u64, theta: f64, h12: usize, seed: u64) -> Database {
    assert!(h12 < m);
    let mut rng = Rng::seed_from_u64(seed);
    let mut d1 = generators::zipf_degrees(m - h12, n, theta);
    let mut d2: Vec<(Vec<u64>, usize)> = generators::zipf_degrees(m - h12, n, theta)
        .into_iter()
        .map(|(k, c)| (vec![n - 1 - k[0]], c))
        .collect();
    if h12 > 0 {
        d1.push((vec![777], h12));
        d2.push((vec![777], h12));
    }
    let s1 = generators::from_degree_sequence("S1", 2, &[1], &d1, n, &mut rng);
    let s2 = generators::from_degree_sequence("S2", 2, &[1], &d2, n, &mut rng);
    Database::new(q.clone(), vec![s1, s2], n).expect("valid skewed db")
}

/// Join-product skew for a two-atom join: `hot` shared join values, each
/// carried by `fanout` tuples on *both* sides, plus degree-1 light tails
/// on disjoint value ranges. Every hot value contributes a `fanout²`
/// cartesian block, so `|output| = hot · fanout² ≫ |inputs| = 2m` — the
/// inputs are barely skewed (`fanout ≪ m`), the *output* is extreme.
/// This is the workload where materializing answers costs `Θ(output)`
/// memory while aggregate pushdown (`mpc_core::aggregate`) stays
/// `Θ(groups)`.
pub fn product_skew_db(
    q: &Query,
    m: usize,
    n: u64,
    hot: usize,
    fanout: usize,
    seed: u64,
) -> Database {
    assert_eq!(q.num_atoms(), 2, "product_skew_db wants a two-atom join");
    assert!(hot * fanout <= m, "hot block exceeds relation size");
    assert!(hot as u64 + 2 * m as u64 <= n, "domain too small");
    let mut rng = Rng::seed_from_u64(seed);
    let light = m - hot * fanout;
    // Hot values 0..hot shared verbatim by both sides; light tails on
    // disjoint ranges (low for S1, high for S2) so they never join and
    // the output is exactly the hot product.
    let mut d1: Vec<(Vec<u64>, usize)> = (0..hot as u64).map(|z| (vec![z], fanout)).collect();
    d1.extend((0..light as u64).map(|i| (vec![hot as u64 + i], 1)));
    let mut d2: Vec<(Vec<u64>, usize)> = (0..hot as u64).map(|z| (vec![z], fanout)).collect();
    d2.extend((0..light as u64).map(|i| (vec![n - 1 - i], 1)));
    let s1 = generators::from_degree_sequence("S1", 2, &[1], &d1, n, &mut rng);
    let s2 = generators::from_degree_sequence("S2", 2, &[1], &d2, n, &mut rng);
    Database::new(q.clone(), vec![s1, s2], n).expect("valid product-skew db")
}

/// Correlated Zipf fan-out: both sides draw the *same* Zipf(θ) degree
/// sequence over the *same* join values, so the hottest value is hot on
/// both sides at once and the join output grows like `Σ_z d(z)²` — a
/// smooth version of [`product_skew_db`] (`skewed_join_db`, by contrast,
/// puts the two celebrity sets at opposite ends of the domain precisely
/// to keep its output small).
pub fn correlated_zipf_db(q: &Query, m: usize, n: u64, theta: f64, seed: u64) -> Database {
    assert_eq!(q.num_atoms(), 2, "correlated_zipf_db wants a two-atom join");
    let mut rng = Rng::seed_from_u64(seed);
    let d = generators::zipf_degrees(m, n, theta);
    let s1 = generators::from_degree_sequence("S1", 2, &[1], &d, n, &mut rng);
    let s2 = generators::from_degree_sequence("S2", 2, &[1], &d, n, &mut rng);
    Database::new(q.clone(), vec![s1, s2], n).expect("valid correlated zipf db")
}

/// A locally-skewed triangle workload for `named::cycle(3)`: the shared
/// variable `x2` is Zipf(θ)-distributed in *both* S1 (column 1) and S2
/// (column 0), with the same value 0 heaviest on both sides, while S3 stays
/// uniform. All three relations have `m` tuples. Fixed-order enumeration
/// that descends through the hot S1×S2 pairs first does Θ(heavy²) work on
/// this instance; the cardinality-guided dynamic order routes around it —
/// `local_join/skewed_triangle` in `bench_join.rs` measures exactly that
/// gap (`q` must be `named::cycle(3)` or an identically-shaped triangle).
pub fn zipf_triangle_db(q: &Query, m: usize, n: u64, theta: f64, seed: u64) -> Database {
    assert_eq!(q.num_atoms(), 3, "zipf_triangle_db wants a triangle query");
    let mut rng = Rng::seed_from_u64(seed);
    let s1 = generators::zipf_column("S1", 2, m, n, 1, theta, &mut rng);
    let s2 = generators::zipf_column("S2", 2, m, n, 0, theta, &mut rng);
    let s3 = generators::uniform("S3", 2, m, n, &mut rng);
    Database::new(q.clone(), vec![s1, s2, s3], n).expect("valid zipf triangle db")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_query::named;

    #[test]
    fn uniform_and_matching_builders() {
        let q = named::cycle(3);
        let u = uniform_db(&q, 100, 256, 1);
        assert_eq!(u.cardinalities(), vec![100; 3]);
        let m = matching_db(&q, 100, 256, 1);
        for j in 0..3 {
            assert_eq!(m.relation(j).max_frequency(&[0]), 1);
        }
    }

    #[test]
    fn zipf_triangle_builder_aligns_the_hot_variable() {
        let q = named::cycle(3);
        let db = zipf_triangle_db(&q, 2000, 1 << 10, 1.2, 3);
        assert_eq!(db.cardinalities(), vec![2000, 2000, 2000]);
        // x2 is column 1 of S1 and column 0 of S2; value 0 is the heaviest
        // on both sides (aligned local skew), far above the uniform mean.
        let hot1 = db.relation(0).frequencies(&[1])[&vec![0u64]];
        let hot2 = db.relation(1).frequencies(&[0])[&vec![0u64]];
        assert!(hot1 > 100 && hot2 > 100, "hot1={hot1} hot2={hot2}");
        assert!(db.relation(2).max_frequency(&[0]) < 20);
    }

    #[test]
    fn product_skew_output_is_the_hot_product() {
        let q = named::two_way_join();
        let (m, hot, fanout) = (400usize, 3usize, 20usize);
        let db = product_skew_db(&q, m, 1 << 12, hot, fanout, 7);
        assert_eq!(db.cardinalities(), vec![m, m]);
        let f1 = db.relation(0).frequencies(&[1]);
        let f2 = db.relation(1).frequencies(&[1]);
        for z in 0..hot as u64 {
            assert_eq!(f1[&vec![z]], fanout);
            assert_eq!(f2[&vec![z]], fanout);
        }
        // Light tails live on disjoint ranges: the output is exactly the
        // hot cartesian blocks, far larger than the inputs.
        let out = mpc_data::join_database(&db);
        assert_eq!(out.len(), hot * fanout * fanout);
        assert!(out.len() > 2 * m);
    }

    #[test]
    fn correlated_zipf_aligns_hot_values_on_both_sides() {
        let q = named::two_way_join();
        let db = correlated_zipf_db(&q, 2000, 1 << 12, 1.2, 5);
        let f1 = db.relation(0).frequencies(&[1]);
        let f2 = db.relation(1).frequencies(&[1]);
        // Identical degree sequences: the same value is hottest on both
        // sides (unlike skewed_join_db's disjoint celebrity sets).
        let hot1 = f1.iter().max_by_key(|(_, &c)| c).unwrap();
        let hot2 = f2.iter().max_by_key(|(_, &c)| c).unwrap();
        assert_eq!(hot1.0, hot2.0);
        assert!(*hot1.1 > 100, "zipf head should be heavy: {}", hot1.1);
        assert_eq!(hot1.1, hot2.1);
    }

    #[test]
    fn skewed_join_builder_plants_h12() {
        let q = named::two_way_join();
        let db = skewed_join_db(&q, 2000, 1 << 12, 1.0, 300, 2);
        assert_eq!(db.cardinalities(), vec![2000, 2000]);
        let f1 = db.relation(0).frequencies(&[1]);
        let f2 = db.relation(1).frequencies(&[1]);
        assert!(f1[&vec![777u64]] >= 300);
        assert!(f2[&vec![777u64]] >= 300);
        // The two hot tails live at opposite ends of the domain.
        assert!(f1.contains_key(&vec![0u64]));
        assert!(f2.contains_key(&vec![(1u64 << 12) - 1]));
    }
}
