//! Shared workload builders for the experiment binaries.

use mpc_data::{generators, Database, Rng};
use mpc_query::Query;

/// One uniform relation per atom.
pub fn uniform_db(q: &Query, m: usize, n: u64, seed: u64) -> Database {
    let mut rng = Rng::seed_from_u64(seed);
    let rels = q
        .atoms()
        .iter()
        .map(|a| generators::uniform(a.name(), a.arity(), m, n, &mut rng))
        .collect();
    Database::new(q.clone(), rels, n).expect("valid uniform db")
}

/// One matching relation per atom (the skew-free extreme).
pub fn matching_db(q: &Query, m: usize, n: u64, seed: u64) -> Database {
    let mut rng = Rng::seed_from_u64(seed);
    let rels = q
        .atoms()
        .iter()
        .map(|a| generators::matching(a.name(), a.arity(), m, n, &mut rng))
        .collect();
    Database::new(q.clone(), rels, n).expect("valid matching db")
}

/// The skewed two-way-join workload used by E6: `z` Zipf(θ) in S1 with hot
/// values at the low end, Zipf(θ) in S2 with hot values at the *high* end
/// (disjoint celebrity sets, so the output stays materializable), plus one
/// shared heavy value (777 on both sides) of frequency `h12` — the H12
/// class of Section 4.1.
pub fn skewed_join_db(q: &Query, m: usize, n: u64, theta: f64, h12: usize, seed: u64) -> Database {
    assert!(h12 < m);
    let mut rng = Rng::seed_from_u64(seed);
    let mut d1 = generators::zipf_degrees(m - h12, n, theta);
    let mut d2: Vec<(Vec<u64>, usize)> = generators::zipf_degrees(m - h12, n, theta)
        .into_iter()
        .map(|(k, c)| (vec![n - 1 - k[0]], c))
        .collect();
    if h12 > 0 {
        d1.push((vec![777], h12));
        d2.push((vec![777], h12));
    }
    let s1 = generators::from_degree_sequence("S1", 2, &[1], &d1, n, &mut rng);
    let s2 = generators::from_degree_sequence("S2", 2, &[1], &d2, n, &mut rng);
    Database::new(q.clone(), vec![s1, s2], n).expect("valid skewed db")
}

/// A locally-skewed triangle workload for `named::cycle(3)`: the shared
/// variable `x2` is Zipf(θ)-distributed in *both* S1 (column 1) and S2
/// (column 0), with the same value 0 heaviest on both sides, while S3 stays
/// uniform. All three relations have `m` tuples. Fixed-order enumeration
/// that descends through the hot S1×S2 pairs first does Θ(heavy²) work on
/// this instance; the cardinality-guided dynamic order routes around it —
/// `local_join/skewed_triangle` in `bench_join.rs` measures exactly that
/// gap (`q` must be `named::cycle(3)` or an identically-shaped triangle).
pub fn zipf_triangle_db(q: &Query, m: usize, n: u64, theta: f64, seed: u64) -> Database {
    assert_eq!(q.num_atoms(), 3, "zipf_triangle_db wants a triangle query");
    let mut rng = Rng::seed_from_u64(seed);
    let s1 = generators::zipf_column("S1", 2, m, n, 1, theta, &mut rng);
    let s2 = generators::zipf_column("S2", 2, m, n, 0, theta, &mut rng);
    let s3 = generators::uniform("S3", 2, m, n, &mut rng);
    Database::new(q.clone(), vec![s1, s2, s3], n).expect("valid zipf triangle db")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_query::named;

    #[test]
    fn uniform_and_matching_builders() {
        let q = named::cycle(3);
        let u = uniform_db(&q, 100, 256, 1);
        assert_eq!(u.cardinalities(), vec![100; 3]);
        let m = matching_db(&q, 100, 256, 1);
        for j in 0..3 {
            assert_eq!(m.relation(j).max_frequency(&[0]), 1);
        }
    }

    #[test]
    fn zipf_triangle_builder_aligns_the_hot_variable() {
        let q = named::cycle(3);
        let db = zipf_triangle_db(&q, 2000, 1 << 10, 1.2, 3);
        assert_eq!(db.cardinalities(), vec![2000, 2000, 2000]);
        // x2 is column 1 of S1 and column 0 of S2; value 0 is the heaviest
        // on both sides (aligned local skew), far above the uniform mean.
        let hot1 = db.relation(0).frequencies(&[1])[&vec![0u64]];
        let hot2 = db.relation(1).frequencies(&[0])[&vec![0u64]];
        assert!(hot1 > 100 && hot2 > 100, "hot1={hot1} hot2={hot2}");
        assert!(db.relation(2).max_frequency(&[0]) < 20);
    }

    #[test]
    fn skewed_join_builder_plants_h12() {
        let q = named::two_way_join();
        let db = skewed_join_db(&q, 2000, 1 << 12, 1.0, 300, 2);
        assert_eq!(db.cardinalities(), vec![2000, 2000]);
        let f1 = db.relation(0).frequencies(&[1]);
        let f2 = db.relation(1).frequencies(&[1]);
        assert!(f1[&vec![777u64]] >= 300);
        assert!(f2[&vec![777u64]] >= 300);
        // The two hot tails live at opposite ends of the domain.
        assert!(f1.contains_key(&vec![0u64]));
        assert!(f2.contains_key(&vec![(1u64 << 12) - 1]));
    }
}
