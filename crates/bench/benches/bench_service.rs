//! Resident-service throughput: how many queries per second the plan
//! cache + memoized statistics sustain, against the per-query rebuild
//! path (fresh `Database`, fresh `ExactStats`, fresh plan every time)
//! that a process without the [`Service`] would pay.
//!
//! The stream mixes shapes whose planning cost spans two orders of
//! magnitude: the 6-variable star's share-LP vertex enumeration is ~15x
//! its execution cost at this scale, the triangle's closer to 2x — the
//! cache's win is exactly the planning it skips.

use mpc_core::engine::Engine;
use mpc_core::service::{QuerySpec, Service};
use mpc_data::{generators, Database, Relation, Rng};
use mpc_query::{named, Query};
use mpc_sim::backend::Backend;
use mpc_testkit::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// Count every heap allocation so `allocs_per_iter` lands in the bench
/// JSON records (see `mpc_bench::alloc_counter`).
#[global_allocator]
static ALLOC: mpc_bench::alloc_counter::CountingAllocator =
    mpc_bench::alloc_counter::CountingAllocator;

const M: usize = 1 << 10;
const DOMAIN: u64 = 1 << 10;
const P: usize = 16;

/// Five shared binary relations S1..S5; every query shape in the stream
/// joins a subset of them, the way service clients share one catalog.
fn catalog() -> Vec<Relation> {
    let mut rng = Rng::seed_from_u64(9);
    (1..=5)
        .map(|i| generators::uniform(&format!("S{i}"), 2, M, DOMAIN, &mut rng))
        .collect()
}

/// The query stream: one wide star (planning-heavy), one triangle, one
/// 4-cycle.
fn stream() -> Vec<Query> {
    vec![named::star(5), named::cycle(3), named::cycle(4)]
}

/// The relations `q` joins, resolved from the catalog by atom name.
fn rels_for(q: &Query, rels: &[Relation]) -> Vec<Relation> {
    q.atoms()
        .iter()
        .map(|a| {
            rels.iter()
                .find(|r| r.name() == a.name())
                .expect("catalog relation")
                .clone()
        })
        .collect()
}

fn bench_service_qps(c: &mut Criterion) {
    let rels = catalog();
    let queries = stream();

    let mut g = c.benchmark_group("service_qps");
    // One element = one answered query, so `thrpt` reads as queries/sec.
    g.throughput(Throughput::Elements(queries.len() as u64));

    // Resident service: relations loaded once, statistics memoized, every
    // plan served from the cache after the first round.
    let mut svc = Service::new(DOMAIN)
        .with_backend(Backend::Sequential)
        .with_defaults(P, 1);
    for r in &rels {
        svc.load(r.clone()).expect("load");
    }
    g.bench_function(BenchmarkId::from_parameter("resident"), |b| {
        b.iter(|| {
            for q in &queries {
                let out = svc.query(black_box(q)).expect("query");
                black_box(out.answers().len());
            }
        })
    });

    // The baseline a service-less process pays per query: revalidate the
    // tuples into a fresh Database, recompute exact statistics, replan,
    // then execute.
    g.bench_function(BenchmarkId::from_parameter("rebuild"), |b| {
        b.iter(|| {
            for q in &queries {
                let db = Database::new(q.clone(), rels_for(q, &rels), DOMAIN).expect("valid db");
                let plan = Engine::new(q).p(P).seed(1).plan(&db);
                let out = plan.execute(&db, Backend::Sequential);
                black_box(out.answers().len());
            }
        })
    });
    g.finish();

    // Batch multiplexing: the same stream twice over, fanned out across
    // the persistent worker pool (parallel across jobs, sequential
    // inside) — the shape `mpcskew serve` uses for BATCH .. RUN.
    let mut g = c.benchmark_group("service_qps_batch");
    g.throughput(Throughput::Elements(2 * queries.len() as u64));
    let mut pooled = Service::new(DOMAIN)
        .with_backend(Backend::Pooled(4))
        .with_defaults(P, 1);
    for r in &rels {
        pooled.load(r.clone()).expect("load");
    }
    let specs: Vec<QuerySpec> = queries
        .iter()
        .chain(queries.iter())
        .map(|q| QuerySpec::new(q.clone()))
        .collect();
    g.bench_function(BenchmarkId::from_parameter("resident_pool4"), |b| {
        b.iter(|| {
            let outs = pooled.query_batch(black_box(&specs));
            black_box(outs.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_service_qps);
criterion_main!(benches);
