//! End-to-end shuffle throughput of the HyperCube algorithm: one full
//! communication round (routing + fragment materialization) per iteration.

use mpc_bench::workloads::uniform_db;
use mpc_core::hypercube::HyperCube;
use mpc_query::named;
use mpc_sim::backend::Backend;
use mpc_stats::SimpleStatistics;
use mpc_testkit::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// Count every heap allocation so `allocs_per_iter` lands in the bench
/// JSON records (see `mpc_bench::alloc_counter`).
#[global_allocator]
static ALLOC: mpc_bench::alloc_counter::CountingAllocator =
    mpc_bench::alloc_counter::CountingAllocator;

fn bench_round(c: &mut Criterion) {
    let backend = Backend::from_env();
    let mut g = c.benchmark_group("hypercube_round");
    for (name, q, m, n) in [
        ("join_16k", named::two_way_join(), 1usize << 14, 1u64 << 16),
        ("triangle_8k", named::cycle(3), 1usize << 13, 1u64 << 12),
        ("star3_8k", named::star(3), 1usize << 13, 1u64 << 12),
    ] {
        let db = uniform_db(&q, m, n, 7);
        let st = SimpleStatistics::of(&db);
        let total: u64 = db.cardinalities().iter().map(|&c| c as u64).sum();
        g.throughput(Throughput::Elements(total));
        for p in [16usize, 64] {
            let hc = HyperCube::with_optimal_shares(&q, &st, p, 3);
            g.bench_function(BenchmarkId::new(name, p), |b| {
                b.iter(|| {
                    let (cluster, report) = hc.run_on(black_box(&db), backend);
                    black_box((cluster.p(), report.max_load_bits()))
                })
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = {
        mpc_testkit::criterion::set_alloc_probe(mpc_bench::alloc_counter::alloc_count);
        Criterion::default().sample_size(10)
    };
    targets = bench_round
}
criterion_main!(benches);
