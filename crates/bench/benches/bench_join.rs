//! Local multiway-join throughput (the per-server compute step) and the
//! full-cluster Zipf end-to-end case (shuffle + per-server local joins)
//! on every execution backend, including the pool-reuse and batch cases.

use mpc_bench::workloads::{skewed_join_db, uniform_db, zipf_triangle_db};
use mpc_core::engine::{Algorithm, Engine};
use mpc_core::skew_join::SkewJoin;
use mpc_data::join::{
    join_count, join_count_ordered, join_foreach_mult, try_join_foreach_mult, JoinOrder,
};
use mpc_data::{QueryBudget, Relation};
use mpc_query::named;
use mpc_sim::backend::Backend;
use mpc_testkit::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

/// Count every heap allocation so `allocs_per_iter` lands in the bench
/// JSON records (see `mpc_bench::alloc_counter`).
#[global_allocator]
static ALLOC: mpc_bench::alloc_counter::CountingAllocator =
    mpc_bench::alloc_counter::CountingAllocator;

fn bench_local_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("local_join");
    for (name, q, m, n) in [
        ("join_16k", named::two_way_join(), 1usize << 14, 1u64 << 14),
        ("triangle_4k", named::cycle(3), 1usize << 12, 1u64 << 8),
        ("chain3_8k", named::chain(3), 1usize << 13, 1u64 << 12),
    ] {
        let db = uniform_db(&q, m, n, 3);
        let rels: Vec<&Relation> = db.relations().iter().map(|r| r.as_ref()).collect();
        g.throughput(Throughput::Elements((m * q.num_atoms()) as u64));
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| black_box(join_count(black_box(&q), &rels)))
        });
    }

    // The dynamic-vs-fixed differential pairs: the default dynamic order
    // (what `join_count` above already runs) against the legacy fixed atom
    // order on the uniform triangle and on the locally-skewed triangle
    // (`zipf_triangle_db`: x2 Zipf-hot in both S1 and S2). The
    // `bindings_per_iter` field in the JSON records — the visited-bindings
    // counter both engines advance — is the machine-noise-free signal next
    // to wall-clock medians: dynamic < fixed is the point of this PR.
    let tri = named::cycle(3);
    let uniform = uniform_db(&tri, 1usize << 12, 1u64 << 8, 3);
    let skewed = zipf_triangle_db(&tri, 1usize << 12, 1u64 << 8, 1.2, 11);
    for (name, db, order) in [
        ("triangle_4k_fixed", &uniform, JoinOrder::Fixed),
        ("skewed_triangle", &skewed, JoinOrder::Dynamic),
        ("skewed_triangle_fixed", &skewed, JoinOrder::Fixed),
    ] {
        let rels: Vec<&Relation> = db.relations().iter().map(|r| r.as_ref()).collect();
        g.throughput(Throughput::Elements((rels.len() << 12) as u64));
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| black_box(join_count_ordered(black_box(&tri), &rels, order)))
        });
    }
    g.finish();
}

/// The cost of cooperative budget enforcement on the local-join hot loop:
/// the same `join_16k` workload unbudgeted (`join_foreach_mult`, the
/// untracked probe) versus under a budget that never trips (a far-future
/// deadline, so every check is live but no limit fires). The budgeted
/// variant pays one predicted compare per visited binding plus a
/// `charge_rows` per emitted answer — the PR's acceptance gate is that
/// `local_join/*` itself (which stays on the untracked path) regresses
/// < 2%, with this pair quantifying the opt-in cost of a real budget.
fn bench_deadline_overhead(c: &mut Criterion) {
    let q = named::two_way_join();
    let m = 1usize << 14;
    let db = uniform_db(&q, m, 1u64 << 14, 3);
    let rels: Vec<&Relation> = db.relations().iter().map(|r| r.as_ref()).collect();

    let mut g = c.benchmark_group("deadline_overhead");
    g.throughput(Throughput::Elements((m * q.num_atoms()) as u64));
    g.bench_function(BenchmarkId::from_parameter("unbudgeted"), |b| {
        b.iter(|| {
            let mut count = 0u64;
            join_foreach_mult(black_box(&q), &rels, JoinOrder::Dynamic, |_, mult| {
                count += mult;
            });
            black_box(count)
        })
    });
    g.bench_function(BenchmarkId::from_parameter("far_deadline"), |b| {
        b.iter(|| {
            let budget = QueryBudget::new(Some(Duration::from_secs(3600)), None, None);
            let mut count = 0u64;
            try_join_foreach_mult(
                black_box(&q),
                &rels,
                JoinOrder::Dynamic,
                &budget,
                |_, mult| {
                    count += mult;
                },
            )
            .expect("far-future deadline never trips");
            black_box(count)
        })
    });
    g.finish();
}

/// The large Zipf end-to-end case: plan once, then per iteration run the
/// full round (shuffle + load report + every server's local join) on a
/// given backend. `Sequential` vs `Threaded(4)` vs `Pooled(4)` quantifies
/// the parallel executors' wall-clock win (parity on single-core machines —
/// results are bit-identical either way).
fn bench_cluster_zipf(c: &mut Criterion) {
    let q = named::two_way_join();
    let m = 1usize << 15;
    let db = skewed_join_db(&q, m, 1 << 15, 1.2, 500, 5);
    let p = 64usize;
    let sj = SkewJoin::plan(&db, p, 2);

    let mut g = c.benchmark_group("cluster_zipf");
    g.throughput(Throughput::Elements(2 * m as u64));
    for (name, backend) in [
        ("sequential", Backend::Sequential),
        ("threaded4", Backend::Threaded(4)),
        ("pooled4", Backend::Pooled(4)),
    ] {
        g.bench_function(BenchmarkId::new("skew_join_e2e", name), |b| {
            b.iter(|| {
                let (cluster, report) = sj.run_on(black_box(&db), backend);
                black_box((cluster.answer_count(&q), report.max_load_bits()))
            })
        });
    }

    // The same round dispatched through the unified engine plan: `auto`
    // resolves to the identical skew join, so the median vs `sequential`
    // above isolates the engine's dispatch overhead (expected: none — one
    // vtable hop per routed tuple batch and a metadata-carrying wrapper).
    let plan = Engine::new(&q).p(p).seed(2).plan(&db);
    assert_eq!(plan.algorithm(), Algorithm::SkewJoin);
    g.bench_function(
        BenchmarkId::new("skew_join_e2e", "engine_sequential"),
        |b| {
            b.iter(|| {
                let outcome = plan.execute(black_box(&db), Backend::Sequential);
                let cluster = outcome.cluster().expect("one-round outcome");
                black_box((cluster.answer_count(&q), outcome.max_load_bits()))
            })
        },
    );

    // Pool-reuse case: 16 small rounds per iteration. Each round's shuffle
    // shards into 4 chunks per relation, so Threaded(4) pays thread spawn +
    // join on every parallel loop of every round while Pooled(4) reuses one
    // persistent worker set — the spawn-amortization win the pool exists
    // for (pooled median ≤ threaded median even on one core).
    let rounds = 16usize;
    let m_small = 1usize << 12;
    let small = skewed_join_db(&q, m_small, 1 << 12, 1.2, 200, 7);
    let sj_small = SkewJoin::plan(&small, 16, 2);
    g.throughput(Throughput::Elements((rounds * 2 * m_small) as u64));
    for (name, backend) in [
        ("threaded4", Backend::Threaded(4)),
        ("pooled4", Backend::Pooled(4)),
    ] {
        g.bench_function(BenchmarkId::new("small_rounds_x16", name), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for _ in 0..rounds {
                    let (cluster, report) = sj_small.run_on(black_box(&small), backend);
                    acc ^= report.max_load_bits() ^ cluster.p() as u64;
                }
                black_box(acc)
            })
        });
    }

    // The same 16 rounds submitted as one batch: parallelism across rounds
    // (each round sequential inside) on the persistent pool — the
    // multi-query-throughput shape. Jobs are built from an engine plan
    // (`Plan` is a `Router`), the post-PR-4 batch idiom.
    let plan_small = Engine::new(&q).p(16).seed(2).plan(&small);
    assert_eq!(plan_small.algorithm(), Algorithm::SkewJoin);
    let jobs: Vec<mpc_sim::BatchJob> = (0..rounds).map(|_| plan_small.batch_job(&small)).collect();
    g.bench_function(BenchmarkId::new("small_rounds_x16", "batch_pooled4"), |b| {
        b.iter(|| {
            let results = mpc_sim::Cluster::run_batch(black_box(&jobs), Backend::Pooled(4));
            black_box(results.len())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = {
        mpc_testkit::criterion::set_alloc_probe(mpc_bench::alloc_counter::alloc_count);
        mpc_testkit::criterion::set_counter_probe(
            "bindings_per_iter",
            mpc_data::join::visited_bindings_total,
        );
        Criterion::default().sample_size(10)
    };
    targets = bench_local_join, bench_deadline_overhead, bench_cluster_zipf
}
criterion_main!(benches);
