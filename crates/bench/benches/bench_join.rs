//! Local multiway-join throughput (the per-server compute step).

use mpc_testkit::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpc_bench::workloads::uniform_db;
use mpc_data::join::join_count;
use mpc_data::Relation;
use mpc_query::named;
use std::hint::black_box;

fn bench_local_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("local_join");
    for (name, q, m, n) in [
        ("join_16k", named::two_way_join(), 1usize << 14, 1u64 << 14),
        ("triangle_4k", named::cycle(3), 1usize << 12, 1u64 << 8),
        ("chain3_8k", named::chain(3), 1usize << 13, 1u64 << 12),
    ] {
        let db = uniform_db(&q, m, n, 3);
        let rels: Vec<&Relation> = db.relations().iter().collect();
        g.throughput(Throughput::Elements((m * q.num_atoms()) as u64));
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| black_box(join_count(black_box(&q), &rels)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_local_join
}
criterion_main!(benches);
