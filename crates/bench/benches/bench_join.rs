//! Local multiway-join throughput (the per-server compute step) and the
//! full-cluster Zipf end-to-end case (shuffle + per-server local joins)
//! on both execution backends.

use mpc_testkit::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpc_bench::workloads::{skewed_join_db, uniform_db};
use mpc_core::skew_join::SkewJoin;
use mpc_data::join::join_count;
use mpc_data::Relation;
use mpc_query::named;
use mpc_sim::backend::Backend;
use std::hint::black_box;

fn bench_local_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("local_join");
    for (name, q, m, n) in [
        ("join_16k", named::two_way_join(), 1usize << 14, 1u64 << 14),
        ("triangle_4k", named::cycle(3), 1usize << 12, 1u64 << 8),
        ("chain3_8k", named::chain(3), 1usize << 13, 1u64 << 12),
    ] {
        let db = uniform_db(&q, m, n, 3);
        let rels: Vec<&Relation> = db.relations().iter().collect();
        g.throughput(Throughput::Elements((m * q.num_atoms()) as u64));
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| black_box(join_count(black_box(&q), &rels)))
        });
    }
    g.finish();
}

/// The large Zipf end-to-end case: plan once, then per iteration run the
/// full round (shuffle + load report + every server's local join) on a
/// given backend. `Sequential` vs `Threaded(4)` quantifies the threaded
/// executor's wall-clock win (parity on single-core machines — results
/// are bit-identical either way).
fn bench_cluster_zipf(c: &mut Criterion) {
    let q = named::two_way_join();
    let m = 1usize << 15;
    let db = skewed_join_db(&q, m, 1 << 15, 1.2, 500, 5);
    let p = 64usize;
    let sj = SkewJoin::plan(&db, p, 2);

    let mut g = c.benchmark_group("cluster_zipf");
    g.throughput(Throughput::Elements(2 * m as u64));
    for (name, backend) in [
        ("sequential", Backend::Sequential),
        ("threaded4", Backend::Threaded(4)),
    ] {
        g.bench_function(BenchmarkId::new("skew_join_e2e", name), |b| {
            b.iter(|| {
                let (cluster, report) = sj.run_on(black_box(&db), backend);
                black_box((cluster.answer_count(&q), report.max_load_bits()))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_local_join, bench_cluster_zipf
}
criterion_main!(benches);
