//! Skew-handling round throughput: planning + one communication round for
//! the Section 4.1 skew join, the Section 4.2 general algorithm, and the
//! hash-join baseline, on a Zipf(1.2) workload.

use mpc_bench::workloads::skewed_join_db;
use mpc_core::baselines::HashJoinRouter;
use mpc_core::skew_general::GeneralSkewAlgorithm;
use mpc_core::skew_join::SkewJoin;
use mpc_query::{named, VarSet};
use mpc_sim::backend::Backend;
use mpc_testkit::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// Count every heap allocation so `allocs_per_iter` lands in the bench
/// JSON records (see `mpc_bench::alloc_counter`).
#[global_allocator]
static ALLOC: mpc_bench::alloc_counter::CountingAllocator =
    mpc_bench::alloc_counter::CountingAllocator;

fn bench_skew_round(c: &mut Criterion) {
    let backend = Backend::from_env();
    let q = named::two_way_join();
    let m = 1usize << 14;
    let db = skewed_join_db(&q, m, 1 << 14, 1.2, 400, 5);
    let p = 64usize;
    let z = q.var_index("z").unwrap();

    let mut g = c.benchmark_group("skew_round");
    g.throughput(Throughput::Elements(2 * m as u64));

    g.bench_function(BenchmarkId::new("hash_join", p), |b| {
        let router = HashJoinRouter::new(&q, VarSet::singleton(z), p, 1);
        b.iter(|| {
            let (_, report) = router.run_on(black_box(&db), backend);
            black_box(report.max_load_tuples())
        })
    });

    g.bench_function(BenchmarkId::new("skew_join_plan_and_run", p), |b| {
        b.iter(|| {
            let sj = SkewJoin::plan(black_box(&db), p, 2);
            let (cluster, _) = sj.run_on(&db, backend);
            black_box(cluster.p())
        })
    });

    g.bench_function(BenchmarkId::new("skew_join_run_only", p), |b| {
        let sj = SkewJoin::plan(&db, p, 2);
        b.iter(|| {
            let (cluster, report) = sj.run_on(black_box(&db), backend);
            black_box((cluster.p(), report.max_load_tuples()))
        })
    });

    g.bench_function(BenchmarkId::new("general_alg_plan", p), |b| {
        b.iter(|| {
            let alg = GeneralSkewAlgorithm::plan(black_box(&db), p, 3);
            black_box(alg.virtual_servers())
        })
    });

    g.bench_function(BenchmarkId::new("general_alg_run_only", p), |b| {
        let alg = GeneralSkewAlgorithm::plan(&db, p, 3);
        b.iter(|| {
            let (cluster, report) = alg.run_on(black_box(&db), backend);
            black_box((cluster.p(), report.max_load_bits()))
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = {
        mpc_testkit::criterion::set_alloc_probe(mpc_bench::alloc_counter::alloc_count);
        Criterion::default().sample_size(10)
    };
    targets = bench_skew_round
}
criterion_main!(benches);
