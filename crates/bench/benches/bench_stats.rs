//! Statistics-maintenance cost: building planner statistics from scratch
//! (`stats_build/{exact,sketch}`) and keeping them fresh under ingest
//! (`service_append_sketch`). The `scan_bytes_per_iter` counter is the
//! acceptance probe — a sketch-mode service folds appended tuples into
//! its SpaceSaving/HLL summaries without rescanning the relation, so its
//! scan bytes stay flat as the resident relation grows, while the
//! rebuild path's full `ExactStats` scan grows linearly.

use mpc_core::engine::{sketch_capacity, Engine, ExactStats, SketchStats, Stats, StatsMode};
use mpc_core::service::Service;
use mpc_data::{generators, Database, Rng};
use mpc_query::named;
use mpc_sim::backend::Backend;
use mpc_testkit::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// Count every heap allocation so `allocs_per_iter` lands in the bench
/// JSON records (see `mpc_bench::alloc_counter`).
#[global_allocator]
static ALLOC: mpc_bench::alloc_counter::CountingAllocator =
    mpc_bench::alloc_counter::CountingAllocator;

const DOMAIN: u64 = 1 << 16;
const P: usize = 16;
const SIZES: [usize; 3] = [1 << 12, 1 << 14, 1 << 16];

/// A two-way-join database with Zipf(1.1) join-column skew at `m` tuples
/// per relation — enough heavy mass that heavy-hitter extraction does
/// real work.
fn zipf_db(m: usize) -> Database {
    let q = named::two_way_join();
    let mut rng = Rng::seed_from_u64(0xBE9C_0000 + m as u64);
    let d1 = generators::zipf_degrees(m, DOMAIN, 1.1);
    let d2 = generators::zipf_degrees(m, DOMAIN, 1.1);
    let s1 = generators::from_degree_sequence("S1", 2, &[1], &d1, DOMAIN, &mut rng);
    let s2 = generators::from_degree_sequence("S2", 2, &[1], &d2, DOMAIN, &mut rng);
    Database::new(q, vec![s1, s2], DOMAIN).expect("valid db")
}

/// Build statistics from scratch and extract the join-column heavy
/// hitters of both atoms — the work `Engine::plan` pays per plan.
fn bench_stats_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("stats_build");
    for m in SIZES {
        let db = zipf_db(m);
        g.throughput(Throughput::Elements(2 * m as u64));
        g.bench_function(BenchmarkId::new("exact", m), |b| {
            b.iter(|| {
                let stats = ExactStats::of(black_box(&db));
                let h0 = stats.heavy_hitters(0, &[1], P);
                let h1 = stats.heavy_hitters(1, &[1], P);
                black_box(h0.len() + h1.len())
            })
        });
        g.bench_function(BenchmarkId::new("sketch", m), |b| {
            b.iter(|| {
                let stats = SketchStats::of(black_box(&db), sketch_capacity(P));
                let h0 = stats.heavy_hitters(0, &[1], P);
                let h1 = stats.heavy_hitters(1, &[1], P);
                black_box(h0.len() + h1.len())
            })
        });
    }
    g.finish();
}

/// Uniform variant of [`zipf_db`]: skew-free join columns keep the
/// answer set (and so query-execution time) small, so the append arms
/// below measure statistics maintenance rather than join output.
fn uniform_db(m: usize) -> Database {
    let q = named::two_way_join();
    let mut rng = Rng::seed_from_u64(0xBE9C_1111 + m as u64);
    let s1 = generators::uniform("S1", 2, m, DOMAIN, &mut rng);
    let s2 = generators::uniform("S2", 2, m, DOMAIN, &mut rng);
    Database::new(q, vec![s1, s2], DOMAIN).expect("valid db")
}

/// One ingest round against a resident relation of `m` tuples: append a
/// 32-tuple batch, then answer the join. In sketch mode the append folds
/// into the summaries and the fingerprint reads them back — no rescan,
/// so `scan_bytes_per_iter` is flat in `m`. The rebuild arm replans from
/// a fresh `ExactStats` each round and its scan bytes grow with `m`.
fn bench_service_append(c: &mut Criterion) {
    let q = named::two_way_join();
    let mut g = c.benchmark_group("service_append_sketch");
    g.throughput(Throughput::Elements(32));
    for m in SIZES {
        for (tag, mode) in [("sketch", StatsMode::Sketch), ("exact", StatsMode::Exact)] {
            let mut svc = Service::new(DOMAIN)
                .with_backend(Backend::Sequential)
                .with_defaults(P, 1)
                .with_stats_mode(mode);
            let db = uniform_db(m);
            for r in db.relations() {
                svc.load(r.as_ref().clone()).expect("load");
            }
            let mut round = 0u64;
            g.bench_function(BenchmarkId::new(format!("resident_{tag}"), m), |b| {
                b.iter(|| {
                    round += 1;
                    let batch: Vec<u64> = (0..32u64)
                        .flat_map(|i| [i, (i * 7 + round) % DOMAIN])
                        .collect();
                    svc.append("S2", black_box(&batch)).expect("append");
                    let out = svc.query(&q).expect("query");
                    black_box(out.answers().len())
                })
            });
        }
        // The service-less baseline: replan from fresh exact statistics
        // after every batch — the full-relation scan the sketch avoids.
        let db = uniform_db(m);
        g.bench_function(BenchmarkId::new("rebuild_exact", m), |b| {
            b.iter(|| {
                let plan = Engine::new(db.query()).p(P).seed(1).plan(black_box(&db));
                black_box(plan.algorithm())
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = {
        mpc_testkit::criterion::set_alloc_probe(mpc_bench::alloc_counter::alloc_count);
        mpc_testkit::criterion::set_counter_probe(
            "scan_bytes_per_iter",
            mpc_data::stats_scan_bytes_total,
        );
        Criterion::default().sample_size(10)
    };
    targets = bench_stats_build, bench_service_append
}
criterion_main!(benches);
