//! Aggregate pushdown vs materialize-then-fold, end to end through the
//! engine, on the workloads where the difference is structural:
//!
//! * `aggregate/count_star_zipf` — global `COUNT(*)` over the correlated
//!   Zipf join (the same Zipf degree sequence on both sides, so the join
//!   output grows like `Σ_z d(z)²`);
//! * `aggregate/group_by_product_skew` — `Q(z; count, sum(x))` over the
//!   planted hot-value product workload (`|output| = hot · fanout² ≫
//!   |inputs|`).
//!
//! Each workload runs twice: the pushdown path (`Engine::aggregate`, per
//! -server folds merged, answers never materialized) and the baseline
//! that materializes the bag of answer rows and folds the same aggregate
//! over them afterwards. Wall-clock medians are one signal; the
//! machine-noise-free ones are in the JSON records: `allocs_per_iter`
//! and `rows_materialized_per_iter` (the `mpc_data` answer-row counter)
//! stay near zero on pushdown and grow with `|output|` on the baseline.

use mpc_bench::workloads::{correlated_zipf_db, product_skew_db};
use mpc_core::aggregate::{AggregateAccumulator, Mergeable};
use mpc_core::engine::Engine;
use mpc_data::catalog::Database;
use mpc_data::AnswerSet;
use mpc_query::aggregate::AggregateSpec;
use mpc_query::{named, parse_aggregate_query};
use mpc_sim::backend::Backend;
use mpc_testkit::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// Count every heap allocation so `allocs_per_iter` lands in the bench
/// JSON records (see `mpc_bench::alloc_counter`).
#[global_allocator]
static ALLOC: mpc_bench::alloc_counter::CountingAllocator =
    mpc_bench::alloc_counter::CountingAllocator;

const P: usize = 16;

/// The materialize-then-fold baseline: per-server local joins push every
/// bag row into an [`AnswerSet`] (exactly what the non-aggregate engine
/// path materializes), then one pass over the rows feeds the same
/// accumulator the pushdown folds during the join.
fn materialize_then_fold(
    cluster: &mpc_sim::cluster::Cluster,
    query: &mpc_query::Query,
    spec: &AggregateSpec,
) -> mpc_core::aggregate::AggregateResult {
    let parts = cluster.fold_answers(
        query,
        || AnswerSet::new(query.num_vars()),
        |rows, binding, mult| rows.push_repeat(binding, mult),
    );
    let mut acc = AggregateAccumulator::new(spec);
    for part in parts {
        let mut local = AggregateAccumulator::new(spec);
        for row in part.rows() {
            local.fold(row, 1);
        }
        acc.merge(local);
    }
    acc.finish()
}

fn run_pair(
    g: &mut mpc_testkit::criterion::BenchmarkGroup<'_>,
    name: &str,
    db: &Database,
    spec: &AggregateSpec,
) {
    let q = db.query();
    let backend = Backend::from_env();
    let plan = Engine::new(q)
        .p(P)
        .seed(3)
        .backend(backend)
        .aggregate(spec.clone())
        .plan(db);
    // Shuffle once; both variants collect from the same cluster state so
    // the measured gap is purely collect-side (fold-during-join vs
    // materialize-rows-then-fold).
    let outcome = plan.execute(db, backend);
    let cluster = outcome.cluster().expect("aggregate plans are one-round");
    let pushdown = outcome.aggregate().expect("plan carries the spec");
    assert_eq!(
        pushdown,
        &materialize_then_fold(cluster, q, spec),
        "baseline and pushdown must agree on {name}"
    );

    let total_tuples: usize = db.cardinalities().iter().sum();
    g.throughput(Throughput::Elements(total_tuples as u64));
    g.bench_function(BenchmarkId::new(name, "pushdown"), |b| {
        b.iter(|| black_box(mpc_core::aggregate::aggregate_cluster(cluster, q, spec).num_groups()))
    });
    g.bench_function(BenchmarkId::new(name, "materialize"), |b| {
        b.iter(|| black_box(materialize_then_fold(cluster, q, spec).num_groups()))
    });
}

fn bench_aggregate(c: &mut Criterion) {
    mpc_testkit::criterion::set_alloc_probe(mpc_bench::alloc_counter::alloc_count);
    mpc_testkit::criterion::set_counter_probe(
        "rows_materialized_per_iter",
        mpc_data::rows_materialized_total,
    );

    let mut g = c.benchmark_group("aggregate");

    let q = named::two_way_join();
    let (_, count_star) = parse_aggregate_query("Q(; count) :- S1(x,z), S2(y,z)").unwrap();
    let zipf = correlated_zipf_db(&q, 1 << 13, 1 << 14, 1.1, 7);
    run_pair(&mut g, "count_star_zipf", &zipf, &count_star.unwrap());

    let (_, group_by) = parse_aggregate_query("Q(z; count, sum(x)) :- S1(x,z), S2(y,z)").unwrap();
    // 8 hot values x 192² pairs: ~295k derivations from 8k input tuples.
    let product = product_skew_db(&q, 1 << 12, 1 << 14, 8, 192, 9);
    run_pair(
        &mut g,
        "group_by_product_skew",
        &product,
        &group_by.unwrap(),
    );

    g.finish();
}

criterion_group!(benches, bench_aggregate);
criterion_main!(benches);
