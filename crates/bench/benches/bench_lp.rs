//! Microbenchmarks for the LP/polytope substrate: the share-exponent LP (5)
//! and the exact vertex enumeration behind `pk(q)`.

use mpc_core::shares::ShareAllocation;
use mpc_query::{named, packing};
use mpc_stats::SimpleStatistics;
use mpc_testkit::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Count every heap allocation so `allocs_per_iter` lands in the bench
/// JSON records (see `mpc_bench::alloc_counter`).
#[global_allocator]
static ALLOC: mpc_bench::alloc_counter::CountingAllocator =
    mpc_bench::alloc_counter::CountingAllocator;

fn bench_share_lp(c: &mut Criterion) {
    let mut g = c.benchmark_group("share_lp");
    for (name, q) in [
        ("join", named::two_way_join()),
        ("triangle", named::cycle(3)),
        ("chain4", named::chain(4)),
        ("star4", named::star(4)),
    ] {
        let arities: Vec<usize> = q.atoms().iter().map(|a| a.arity()).collect();
        let st = SimpleStatistics::synthetic(
            &arities,
            (0..q.num_atoms()).map(|j| 1usize << (14 + j)).collect(),
            1 << 20,
        );
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let alloc = ShareAllocation::optimize(black_box(&q), &st, 64).unwrap();
                black_box(alloc.lambda)
            })
        });
    }
    g.finish();
}

fn bench_vertex_enum(c: &mut Criterion) {
    let mut g = c.benchmark_group("pk_vertex_enumeration");
    for w in [3usize, 4, 5] {
        let q = named::cycle(w);
        g.bench_function(BenchmarkId::new("cycle", w), |b| {
            b.iter(|| black_box(packing::pk(black_box(&q)).len()))
        });
    }
    let q = named::chain(5);
    g.bench_function("chain5", |b| {
        b.iter(|| black_box(packing::pk(black_box(&q)).len()))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = {
        mpc_testkit::criterion::set_alloc_probe(mpc_bench::alloc_counter::alloc_count);
        Criterion::default().sample_size(20)
    };
    targets = bench_share_lp, bench_vertex_enum
}
criterion_main!(benches);
