#!/usr/bin/env sh
# Tier-1 verification for the mpc-skew workspace. Hermetic: no network, no
# registry dependencies (the only external surface, proptest/criterion, is
# replaced in-tree by crates/testkit).
#
#   ./ci.sh              # build + serve smoke + triple-backend tests + fmt
#                        # + lint + docs + bench-compile
#   ./ci.sh --quick      # tier-1 gate only (what the driver enforces);
#                        # `cargo test` includes the rustdoc doctests
#   ./ci.sh --bench prN  # bench smoke only (reduced budget) -> BENCH_prN.json;
#                        # the label is required so medians stay comparable
#                        # PR over PR; run --quick or the full gate separately
#   ./ci.sh --bench-compare OLD.json NEW.json
#                        # per-benchmark median deltas between two recorded
#                        # trajectory files; regressions >10% are flagged
#                        # (the full gate runs this against the newest two
#                        # BENCH_*.json automatically)
#
# The test suite runs three times — pinned to the sequential backend
# (MPCSKEW_THREADS=1), to the persistent worker pool (pool:4), and on the
# default (threaded) backend — so every test triples as a three-way
# differential check across executors.
#
# A per-stage wall-clock summary is printed at the end of every run, so
# regressions in CI time itself stay visible.
set -eu

STAGE_SUMMARY=""
STAGE_NAME=""
STAGE_START=0
CI_START=$(date +%s)

stage() {
    stage_end
    STAGE_NAME="$1"
    STAGE_START=$(date +%s)
    echo "==> $1"
}

stage_end() {
    if [ -n "$STAGE_NAME" ]; then
        STAGE_SUMMARY="${STAGE_SUMMARY}  $(( $(date +%s) - STAGE_START ))s  ${STAGE_NAME}\n"
        STAGE_NAME=""
    fi
}

summary() {
    stage_end
    printf '\n==> ci.sh stage wall-clock summary (total %ss):\n' "$(( $(date +%s) - CI_START ))"
    # shellcheck disable=SC2059
    printf "$STAGE_SUMMARY"
}

if [ "${1:-}" = "--bench-compare" ]; then
    OLD="${2:-}"
    NEW="${3:-}"
    if [ -z "$OLD" ] || [ -z "$NEW" ]; then
        echo "error: --bench-compare needs two trajectory files, e.g.:" >&2
        echo "  ./ci.sh --bench-compare BENCH_pr4.json BENCH_pr5.json" >&2
        exit 2
    fi
    stage "bench_compare $OLD $NEW"
    cargo run --release -q -p mpc-bench --bin bench_compare --offline -- "$OLD" "$NEW"
    summary
    exit 0
fi

if [ "${1:-}" = "--bench" ]; then
    # Bench smoke: every criterion-lite group on a reduced sample budget,
    # recorded to BENCH_<label>.json at the repo root so the perf
    # trajectory accumulates PR over PR. The schema is documented in the
    # file's "_schema" field; per-benchmark records come from the
    # harness's MPC_TESTKIT_BENCH_JSON hook (crates/testkit/src/criterion.rs).
    LABEL="${2:-}"
    if [ -z "$LABEL" ]; then
        echo "error: --bench needs a label naming the output file, e.g.:" >&2
        echo "  ./ci.sh --bench pr4    # -> BENCH_pr4.json" >&2
        exit 2
    fi
    BENCH_OUT="BENCH_${LABEL}.json"
    stage "cargo bench (reduced budget) -> ${BENCH_OUT}"
    # Absolute path: cargo runs bench binaries with cwd at their package
    # root, not the workspace root.
    BENCH_JSONL="$(pwd)/target/bench_results.jsonl"
    rm -f "$BENCH_JSONL"
    MPC_TESTKIT_BENCH_JSON="$BENCH_JSONL" \
    MPC_TESTKIT_SAMPLES=5 \
    MPC_TESTKIT_SAMPLE_MS=20 \
        cargo bench --workspace --offline
    NPROC=$( (nproc || sysctl -n hw.ncpu || echo 1) 2>/dev/null | head -n1 )
    {
        printf '{\n'
        printf '  "_schema": "results[]: one record per criterion-lite benchmark; group/bench name the benchmark (label = group/bench), median_ns|min_ns|max_ns are per-iteration wall-clock over `samples` samples of `iters_per_sample` iterations; allocs_per_iter (optional) is the mean heap-allocation count per iteration from the bench binary'\''s counting global allocator (exact and host-noise-free, present since pr5); bindings_per_iter (optional) is the mean join-bindings-visited count per iteration from mpc_data::join::visited_bindings_total (present since pr7); scan_bytes_per_iter (optional) is the mean relation bytes scanned to (re)build planner statistics per iteration from mpc_data::stats_scan_bytes_total — flat under sketch-backed append, linear under exact rebuild (present since pr8); rows_materialized_per_iter (optional) is the mean answer rows materialized into AnswerSets per iteration from mpc_data::rows_materialized_total — ~0 under aggregate pushdown, Θ(output) when answers materialize (present since pr9). Counters are exact and host-noise-free; bench_compare trusts them over wall-clock for µs-scale benches (which flag only past 100%%, vs 10%% elsewhere). backend is the default executor during the run (MPCSKEW_THREADS or all cores; individual benches may pin their own backend, named in `bench`). nproc is the CPU budget of the benching host. Compare two files with ./ci.sh --bench-compare OLD NEW.",\n'
        printf '  "pr": "%s",\n' "$LABEL"
        printf '  "generated_by": "ci.sh --bench %s",\n' "$LABEL"
        printf '  "nproc": %s,\n' "$NPROC"
        printf '  "backend": "%s",\n' "${MPCSKEW_THREADS:-default(all cores)}"
        printf '  "sample_budget": {"samples": 5, "sample_ms": 20},\n'
        printf '  "results": [\n'
        sed 's/^/    /; $!s/$/,/' "$BENCH_JSONL"
        printf '  ]\n}\n'
    } > "$BENCH_OUT"
    echo "wrote $BENCH_OUT ($(grep -c . "$BENCH_JSONL") benchmarks)"
    summary
    exit 0
fi

stage "cargo build --release"
cargo build --release --offline

stage "mpcskew serve smoke (LOAD/QUERY/APPEND/STATS/SHUTDOWN over stdin)"
SERVE_OUT=$(printf 'LOAD S1 2 0,1;1,1;2,3\nLOAD S2 2 5,1;6,3;7,9\nQUERY S1(x,z), S2(y,z) rows\nQUERY Q(z; count, sum(x)) :- S1(x,z), S2(y,z) rows\nAPPEND S2 8,1\nQUERY S1(x,z), S2(y,z)\nSTATS\nSHUTDOWN\n' \
    | ./target/release/mpcskew serve --domain 16 --p 4 --threads 1)
serve_expect() {
    echo "$SERVE_OUT" | grep -q "$1" || {
        echo "serve smoke: missing \`$1\` in:" >&2
        echo "$SERVE_OUT" >&2
        exit 1
    }
}
serve_expect '^ok loaded S2 arity=2 tuples=3$'
serve_expect '^ok answers=3 .*cache=miss'
serve_expect '^0 1 5$'            # first joined row, echoed sorted
# Aggregate pushdown over the wire: group-by z, COUNT + SUM(x), answers
# never materialized — z=1 has derivations (0,_,1),(1,_,1), z=3 has (2,_,3).
serve_expect '^ok groups=2 '
serve_expect '^1 | 2 1$'
serve_expect '^3 | 1 2$'
serve_expect '^ok appended S2 +1 tuples=4$'
serve_expect '^ok answers=5 '     # the appended tuple joins twice
# serve defaults to sketch-backed statistics; STATS reports the mode and
# one sketch telemetry record (summary bytes, capacity, max error bound).
# Two invalidations: the APPEND changed the stats fingerprint under both
# cached plans (the plain query and its aggregate twin).
serve_expect 'invalidations=2 evictions=0 relations=2 mode=sketch$'
serve_expect '^sketch bytes=[0-9][0-9]* capacity=[0-9][0-9]* max_error=[0-9][0-9]*$'
serve_expect '^ok bye$'           # SHUTDOWN acknowledged, clean exit

stage "cargo test -q  (MPCSKEW_THREADS=1: sequential backend)"
MPCSKEW_THREADS=1 cargo test -q --workspace --offline

stage "cargo test -q  (MPCSKEW_THREADS=pool:4: persistent worker pool)"
MPCSKEW_THREADS=pool:4 cargo test -q --workspace --offline

stage "cargo test -q  (default backend: threaded)"
cargo test -q --workspace --offline

# Chaos stage: the failpoint suite again, but with the registry armed from
# the environment (the production arming path) — delay-only sites, so
# results stay bit-identical while every baseline query exercises the
# injected-latency path. Panic sites are armed by the suite itself.
stage "chaos: MPCSKEW_FAILPOINTS armed failpoint suite"
MPCSKEW_FAILPOINTS="shuffle:delay:1ms,local_join:delay:1ms" \
    cargo test -q --offline --test chaos

if [ "${1:-}" = "--quick" ]; then
    summary
    exit 0
fi

stage "cargo test -q -- --ignored   (heavy-output stress cases, threaded backend)"
MPCSKEW_THREADS=4 cargo test -q --workspace --offline -- --ignored

stage "cargo test -q -- --ignored   (heavy-output stress cases, pooled backend)"
MPCSKEW_THREADS=pool:4 cargo test -q --workspace --offline -- --ignored

stage "cargo fmt --all -- --check"
cargo fmt --all -- --check

stage "cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

stage "cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
# The public API (Engine/Plan/RunOutcome and everything else) must ship
# documented: broken intra-doc links and missing docs fail the gate.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

stage "cargo bench --no-run"
cargo bench --workspace --offline --no-run

# Bench-trajectory comparison: newest recorded baseline vs its predecessor.
# Informational — medians recorded on different commits of this noisy
# single-core host; the tool prints deltas and flags >10% regressions, and
# a fresh pair is recorded per PR via `./ci.sh --bench prN`. "Newest" is by
# the numeric part of the label (pr3 < pr4 < ... < pr10), not mtime — on a
# fresh checkout every committed file shares one mtime.
BENCH_SORTED=$(for f in BENCH_*.json; do
    [ -e "$f" ] || continue
    n=$(printf '%s' "$f" | sed 's/[^0-9]//g')
    printf '%012d %s\n' "${n:-0}" "$f"
done | sort -n | awk '{print $2}')
BENCH_NEWEST=$(printf '%s\n' "$BENCH_SORTED" | sed -n '$p')
BENCH_PREV=$(printf '%s\n' "$BENCH_SORTED" | sed -n '$!h; ${x;p;}' | sed -n '$p')
if [ -n "$BENCH_NEWEST" ] && [ -n "$BENCH_PREV" ]; then
    stage "bench trajectory: $BENCH_PREV vs $BENCH_NEWEST"
    cargo run --release -q -p mpc-bench --bin bench_compare --offline -- \
        "$BENCH_PREV" "$BENCH_NEWEST"
fi

stage_end
echo "==> ci.sh: all green"
summary
