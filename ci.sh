#!/usr/bin/env sh
# Tier-1 verification for the mpc-skew workspace. Hermetic: no network, no
# registry dependencies (the only external surface, proptest/criterion, is
# replaced in-tree by crates/testkit).
#
#   ./ci.sh            # build + dual-backend tests + lint + bench-compile
#   ./ci.sh --quick    # tier-1 gate only (what the driver enforces)
#
# The test suite runs twice: once pinned to the sequential execution
# backend (MPCSKEW_THREADS=1) and once on the default (threaded) backend,
# so every test doubles as a cross-backend differential check.
set -eu

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q  (MPCSKEW_THREADS=1: sequential backend)"
MPCSKEW_THREADS=1 cargo test -q --workspace --offline

echo "==> cargo test -q  (default backend: threaded)"
cargo test -q --workspace --offline

if [ "${1:-}" = "--quick" ]; then
    exit 0
fi

echo "==> cargo test -q -- --ignored   (heavy-output stress cases, threaded backend)"
MPCSKEW_THREADS=4 cargo test -q --workspace --offline -- --ignored

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo bench --no-run"
cargo bench --workspace --offline --no-run

echo "==> ci.sh: all green"
