#!/usr/bin/env sh
# Tier-1 verification for the mpc-skew workspace. Hermetic: no network, no
# registry dependencies (the only external surface, proptest/criterion, is
# replaced in-tree by crates/testkit).
#
#   ./ci.sh            # build + test + lint + bench-compile
#   ./ci.sh --quick    # tier-1 gate only (what the driver enforces)
set -eu

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --workspace --offline

if [ "${1:-}" = "--quick" ]; then
    exit 0
fi

echo "==> cargo test -q -- --ignored   (heavy-output stress cases)"
cargo test -q --workspace --offline -- --ignored

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo bench --no-run"
cargo bench --workspace --offline --no-run

echo "==> ci.sh: all green"
