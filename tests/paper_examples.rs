//! The paper's worked examples, executed as assertions.
//!
//! Each test reproduces a numbered example from Beame–Koutris–Suciu
//! (PODS 2014) end-to-end: construct the instance, run the algorithm the
//! example discusses, and check the loads/bounds the example derives.

use mpc_lp::Rat;
use mpc_skew::core::bounds;
use mpc_skew::core::hypercube::HyperCube;
use mpc_skew::core::shares::ShareAllocation;
use mpc_skew::core::verify;
use mpc_skew::data::{generators, Database, Rng};
use mpc_skew::query::packing::pk;
use mpc_skew::query::{named, residual_query, saturating_pk, Packing, VarSet};
use mpc_skew::stats::degree_statistics;
use mpc_skew::stats::SimpleStatistics;

/// Section 1's warm-up: the cartesian product `S1(x) × S2(y)` with
/// cardinalities m1, m2 has optimal load `~2·sqrt(m1 m2 / p)`, achieved by a
/// `p1 × p2` grid with `p1 = sqrt(m1 p / m2)`.
#[test]
fn section_1_cartesian_product() {
    let q = named::cartesian(2);
    let (m1, m2) = (4096usize, 16384usize);
    let n = 1u64 << 16;
    let mut rng = Rng::seed_from_u64(1);
    let s1 = generators::uniform("S1", 1, m1, n, &mut rng);
    let s2 = generators::uniform("S2", 1, m2, n, &mut rng);
    let db = Database::new(q.clone(), vec![s1, s2], n).unwrap();
    let st = SimpleStatistics::of(&db);
    let p = 64usize;

    // The paper's split: p1 = sqrt(m1 p / m2) = sqrt(16) = 4, p2 = 16.
    let alloc = ShareAllocation::optimize(&q, &st, p).unwrap();
    assert_eq!(alloc.shares, vec![4, 16], "paper's p1/p2 split");

    let hc = HyperCube::new(&q, &alloc, 3);
    let (_, report) = hc.run(&db);

    // Completeness at a scale whose output (256 x 512 = 128k rows) is cheap
    // to materialize; the load measurement above uses the full sizes whose
    // 64M-row product would dominate the whole suite's runtime.
    let small = Database::new(
        q.clone(),
        vec![
            generators::uniform("S1", 1, 256, n, &mut rng),
            generators::uniform("S2", 1, 512, n, &mut rng),
        ],
        n,
    )
    .unwrap();
    let st_small = SimpleStatistics::of(&small);
    let hc_small = HyperCube::with_optimal_shares(&q, &st_small, 16, 3);
    let (cluster_small, _) = hc_small.run(&small);
    verify::assert_complete(&small, &cluster_small);

    // Load per server ~ 2 sqrt(m1 m2 / p) tuples = m1/p1 + m2/p2.
    let ideal = 2.0 * ((m1 * m2) as f64 / p as f64).sqrt();
    let measured = report.max_load_tuples() as f64;
    assert!(
        measured < 2.0 * ideal && measured > 0.5 * ideal,
        "measured {measured} vs ideal {ideal}"
    );
}

/// Example 3.3: the join under the two share allocations, on skew-free and
/// on fully-skewed data.
#[test]
fn example_3_3_join_two_allocations() {
    let q = named::two_way_join();
    let n = 1u64 << 14;
    let m = 8192usize;
    let p = 64usize;
    let z = q.var_index("z").unwrap();

    // Skew-free: every z-value has frequency <= m/p.
    let mut rng = Rng::seed_from_u64(2);
    let skew_free = Database::new(
        q.clone(),
        vec![
            generators::matching("S1", 2, m, n, &mut rng),
            generators::matching("S2", 2, m, n, &mut rng),
        ],
        n,
    )
    .unwrap();
    // Fully skewed: a single z-value.
    let skewed = Database::new(
        q.clone(),
        vec![
            generators::single_value_column("S1", 2, m, n, 1, 7, &mut rng),
            generators::single_value_column("S2", 2, m, n, 1, 7, &mut rng),
        ],
        n,
    )
    .unwrap();

    let cube = HyperCube::with_equal_shares(&q, p, 4); // (p^1/3 each)
    let mut hj_shares = vec![1usize; 3];
    hj_shares[z] = p;
    let hash = HyperCube::new(&q, &ShareAllocation::explicit(hj_shares, p), 4);

    // Skew-free: hash join achieves O(m/p); cube pays m/p^{2/3}.
    let (_, cube_free) = cube.run(&skew_free);
    let (_, hash_free) = hash.run(&skew_free);
    let scan = (2 * m) as f64 / p as f64;
    assert!(
        (hash_free.max_load_tuples() as f64) < 4.0 * scan,
        "hash join on skew-free data should be ~m/p: {} vs {scan}",
        hash_free.max_load_tuples()
    );
    let cube_expected = 2.0 * m as f64 / (p as f64).powf(2.0 / 3.0);
    assert!(
        (cube_free.max_load_tuples() as f64) < 4.0 * cube_expected,
        "cube on skew-free data: {} vs {cube_expected}",
        cube_free.max_load_tuples()
    );

    // Skewed: hash join collapses to m; cube stays at ~m/p^{1/3}.
    let (_, cube_skew) = cube.run(&skewed);
    let (_, hash_skew) = hash.run(&skewed);
    assert_eq!(
        hash_skew.max_load_tuples(),
        (2 * m) as u64,
        "hash join must collapse onto one server"
    );
    let resilience = 2.0 * m as f64 / (p as f64).powf(1.0 / 3.0);
    assert!(
        (cube_skew.max_load_tuples() as f64) < 3.0 * resilience,
        "Cor 3.2(ii) resilience violated: {} vs {resilience}",
        cube_skew.max_load_tuples()
    );
}

/// Example 3.7: the four vertices of `pk(C3)` and their loads; the maximum
/// is both the algorithm's load and the lower bound.
#[test]
fn example_3_7_triangle_vertex_table() {
    let q = named::cycle(3);
    let vertices = pk(&q);
    let mut expected = vec![
        Packing(vec![Rat::new(1, 2); 3]),
        Packing(vec![Rat::ONE, Rat::ZERO, Rat::ZERO]),
        Packing(vec![Rat::ZERO, Rat::ONE, Rat::ZERO]),
        Packing(vec![Rat::ZERO, Rat::ZERO, Rat::ONE]),
    ];
    expected.sort();
    assert_eq!(vertices, expected);

    // Regime A (balanced sizes): the fractional vertex wins.
    let st_a = SimpleStatistics::synthetic(&[2, 2, 2], vec![1 << 16; 3], 1 << 20);
    let (_, win_a) = bounds::l_lower(&q, &st_a, 64);
    assert_eq!(win_a.to_f64(), vec![0.5, 0.5, 0.5]);

    // Regime B (one giant relation): its unit vertex wins.
    let st_b = SimpleStatistics::synthetic(&[2, 2, 2], vec![1 << 26, 1 << 10, 1 << 10], 64);
    let (_, win_b) = bounds::l_lower(&q, &st_b, 8);
    assert_eq!(win_b.to_f64(), vec![1.0, 0.0, 0.0]);
}

/// Example 4.8: residual lower bounds for the join and the triangle.
#[test]
fn example_4_8_residual_bounds() {
    // Join: x = {z} gives sqrt(Σ_h M1(h) M2(h) / p); C3: x = {x1} gives
    // sqrt(Σ_h M1(h) M3(h) / p) via the packing (1, 0, 1).
    let q = named::cycle(3);
    let n = 1u64 << 12;
    let mut rng = Rng::seed_from_u64(3);
    let d: Vec<(Vec<u64>, usize)> = vec![(vec![5], 200), (vec![6], 100)];
    // x1 appears at position 0 of S1 and position 1 of S3.
    let s1 = generators::from_degree_sequence("S1", 2, &[0], &d, n, &mut rng);
    let s2 = generators::uniform("S2", 2, 300, n, &mut rng);
    let s3 = generators::from_degree_sequence("S3", 2, &[1], &d, n, &mut rng);
    let db = Database::new(q.clone(), vec![s1, s2, s3], n).unwrap();

    let x1 = VarSet::singleton(0);
    // The saturating packing (1,0,1) exists for q_{x1}.
    let sat = saturating_pk(&q, x1);
    assert!(sat.contains(&Packing(vec![Rat::ONE, Rat::ZERO, Rat::ONE])));
    // And the residual query has the shape the example says.
    let qx = residual_query(&q, x1);
    assert_eq!(qx.atom(0).arity(), 1);
    assert_eq!(qx.atom(1).arity(), 2);
    assert_eq!(qx.atom(2).arity(), 1);

    let deg = degree_statistics(&db, x1);
    let bits = db.value_bits();
    let (val, u) = bounds::residual_lower_bound(&q, &deg, 16, bits, n).unwrap();
    // Manual sqrt(Σ_h M1(h) M3(h) / p) for the planted degrees.
    let term = |f: f64| 2.0 * f * bits as f64;
    let manual = ((term(200.0) * term(200.0) + term(100.0) * term(100.0)) / 16.0).sqrt();
    assert!(
        (val - manual).abs() / manual < 1e-9,
        "bound {val} vs manual {manual} (u = {:?})",
        u.to_f64()
    );
    assert_eq!(u.to_f64(), vec![1.0, 0.0, 1.0]);
}

/// Example 5.2: triangles with equal sizes — replication rate `Ω(sqrt(M/L))`
/// and at least `(M/L)^{3/2}` reducers.
#[test]
fn example_5_2_triangle_replication() {
    let q = named::cycle(3);
    let m_bits = (3u64 << 20) as f64;
    let st = SimpleStatistics {
        cardinalities: vec![1 << 17; 3],
        bit_sizes: vec![m_bits as u64; 3],
        value_bits: 12,
        domain: 1 << 12,
    };
    for factor in [4.0f64, 16.0, 64.0] {
        let l = m_bits / factor;
        let r = bounds::replication_rate_bound(&q, &st, l);
        let expected = (m_bits / l).sqrt() / 3.0;
        assert!((r - expected).abs() / expected < 1e-9);
        let reducers = bounds::min_reducers(&q, &st, l);
        assert!((reducers - factor.powf(1.5)).abs() / reducers < 1e-9);
    }
}

/// Section 3.3's broadcast observation: a relation with `M_j <= M/p` can be
/// broadcast, and the closed-form bound follows the residual query. Checks
/// that our `l_lower` handles the regime (dominated vertices can win).
#[test]
fn broadcast_regime_lower_bound() {
    let q = named::cartesian(3);
    // M1 tiny: optimal strategy broadcasts S1 and splits S2 x S3.
    let st = SimpleStatistics::synthetic(&[1, 1, 1], vec![1 << 4, 1 << 14, 1 << 16], 1 << 20);
    let p = 8usize;
    let (val, u) = bounds::l_lower(&q, &st, p);
    let m = st.bit_sizes_f64();
    let expected = (m[1] * m[2] / p as f64).sqrt();
    assert!(
        (val - expected).abs() / expected < 1e-9,
        "broadcast-regime bound {val} vs {expected}"
    );
    assert_eq!(u.to_f64(), vec![0.0, 1.0, 1.0]);
}
