//! End-to-end aggregate pushdown: every op, every backend, every workload
//! class, differentially verified against the sequential oracle fold —
//! plus the planner/service contracts around which algorithms qualify.

use mpc_bench::workloads::{correlated_zipf_db, product_skew_db, skewed_join_db, uniform_db};
use mpc_skew::core::aggregate::{aggregate_oracle, AggregateResult};
use mpc_skew::core::engine::{execute_batch, Algorithm, Engine};
use mpc_skew::data::{generators, Database, Rng};
use mpc_skew::query::aggregate::{AggregateOp, AggregateSpec};
use mpc_skew::query::{named, parse_aggregate_query};
use mpc_skew::sim::backend::Backend;

const P: usize = 16;
const SEED: u64 = 11;

const BACKENDS: [Backend; 3] = [
    Backend::Sequential,
    Backend::Threaded(4),
    Backend::Pooled(4),
];

/// Run `spec` over `db` with `algo` on every backend; assert the result is
/// bit-identical to the oracle (and therefore across backends too).
fn assert_matches_oracle(name: &str, db: &Database, spec: &AggregateSpec, algo: Algorithm) {
    let expected = aggregate_oracle(db, spec);
    let plan = Engine::new(db.query())
        .p(P)
        .seed(SEED)
        .algorithm(algo)
        .aggregate(spec.clone())
        .plan(db);
    for backend in BACKENDS {
        let outcome = plan.execute(db, backend);
        assert_eq!(
            outcome.aggregate(),
            Some(&expected),
            "{name} [{algo}/{backend}]: aggregate drifted from the oracle"
        );
        assert_eq!(
            outcome.verify_aggregate(db),
            Some(true),
            "{name} [{algo}/{backend}]"
        );
    }
}

/// The full op set over variable indices of the two-way join
/// `Q(x,y,z) :- S1(x,z), S2(y,z)`: group by `z`, aggregate over `x`.
fn full_spec(q: &mpc_skew::query::Query) -> AggregateSpec {
    let z = q.num_vars() - 1;
    AggregateSpec::new(
        vec![z],
        vec![
            AggregateOp::Count,
            AggregateOp::Sum(0),
            AggregateOp::Min(0),
            AggregateOp::Max(0),
            AggregateOp::CountDistinct(0),
        ],
    )
    .unwrap()
}

#[test]
fn every_op_matches_oracle_across_backends_and_workloads() {
    let q = named::two_way_join();
    let workloads: Vec<(&str, Database)> = vec![
        ("uniform", uniform_db(&q, 1200, 1 << 10, 3)),
        ("zipf_h12", skewed_join_db(&q, 1500, 1 << 11, 1.1, 200, 5)),
        ("product_skew", product_skew_db(&q, 600, 1 << 11, 4, 24, 7)),
        (
            "correlated_zipf",
            correlated_zipf_db(&q, 1200, 1 << 11, 1.2, 9),
        ),
    ];
    let global_count = AggregateSpec::new(vec![], vec![AggregateOp::Count]).unwrap();
    for (name, db) in &workloads {
        assert_matches_oracle(name, db, &global_count, Algorithm::Auto);
        assert_matches_oracle(name, db, &full_spec(&q), Algorithm::Auto);
    }
}

#[test]
fn every_derivation_partitioning_algorithm_is_exact() {
    // Zipf data with a planted shared-heavy value stresses the heavy
    // routes of the skew join and the replication of fragment-replicate.
    let q = named::two_way_join();
    let db = skewed_join_db(&q, 2000, 1 << 11, 1.2, 300, 13);
    let spec = full_spec(&q);
    for algo in [
        Algorithm::HyperCube,
        Algorithm::HyperCubeEqual,
        Algorithm::HashJoin,
        Algorithm::FragmentReplicate,
        Algorithm::SkewJoin,
    ] {
        assert_matches_oracle("zipf_h12", &db, &spec, algo);
    }
}

#[test]
fn auto_with_aggregate_resolves_away_from_general_skew() {
    // The same skewed triangle that makes plain auto pick the §4.2
    // general algorithm (see planner_choice.rs) must fall back to
    // skew-resilient equal shares once an aggregate head is attached:
    // the general algorithm replicates derivations across its
    // bin-combination sub-instances.
    let q = named::cycle(3);
    let n = 1u64 << 7;
    let mut rng = Rng::seed_from_u64(0xBEEF_0005);
    let d = generators::zipf_degrees(1500, n, 1.0);
    let mut rels = vec![generators::from_degree_sequence(
        "S1",
        2,
        &[1],
        &d,
        n,
        &mut rng,
    )];
    for a in ["S2", "S3"] {
        rels.push(generators::uniform(a, 2, 1500, n, &mut rng));
    }
    let db = Database::new(q.clone(), rels, n).unwrap();

    let plain = Engine::new(&q).p(P).seed(SEED).plan(&db);
    assert_eq!(plain.algorithm(), Algorithm::GeneralSkew);

    let spec = AggregateSpec::new(vec![0], vec![AggregateOp::Count]).unwrap();
    let plan = Engine::new(&q)
        .p(P)
        .seed(SEED)
        .aggregate(spec.clone())
        .plan(&db);
    assert_eq!(plan.algorithm(), Algorithm::HyperCubeEqual);
    let expected = aggregate_oracle(&db, &spec);
    for backend in BACKENDS {
        assert_eq!(plan.execute(&db, backend).aggregate(), Some(&expected));
    }
}

#[test]
#[should_panic(expected = "aggregate heads need a plan")]
fn explicit_multi_round_with_aggregate_panics() {
    let q = named::two_way_join();
    let db = uniform_db(&q, 300, 1 << 9, 1);
    let spec = AggregateSpec::new(vec![], vec![AggregateOp::Count]).unwrap();
    let _ = Engine::new(&q)
        .p(4)
        .algorithm(Algorithm::MultiRound)
        .aggregate(spec)
        .plan(&db);
}

#[test]
fn batch_execution_carries_aggregates_alongside_answers() {
    let q = named::two_way_join();
    let db = product_skew_db(&q, 600, 1 << 11, 4, 24, 21);
    let (_, spec) = parse_aggregate_query("Q(z; count, sum(x)) :- S1(x,z), S2(y,z)").unwrap();
    let spec = spec.unwrap();

    let agg_plan = Engine::new(&q)
        .p(P)
        .seed(SEED)
        .aggregate(spec.clone())
        .plan(&db);
    let plain_plan = Engine::new(&q).p(P).seed(SEED).plan(&db);
    let jobs = [(&agg_plan, &db), (&plain_plan, &db)];
    let outcomes = execute_batch(&jobs, Backend::Sequential);

    let expected: AggregateResult = aggregate_oracle(&db, &spec);
    assert_eq!(outcomes[0].aggregate(), Some(&expected));
    // The plain twin still materializes answers and carries no aggregate.
    assert_eq!(outcomes[1].aggregate(), None);
    assert!(outcomes[1].verify(&db).is_complete());
    // Routing is identical: the aggregate changes collection, not load.
    assert_eq!(outcomes[0].report(), outcomes[1].report());
}

#[test]
fn group_keys_and_values_are_exact_on_a_hand_checkable_instance() {
    // S1 = {(0,1),(1,1),(2,3)}, S2 = {(5,1),(6,3),(7,9)} over z:
    //   z=1: derivations (0,5,1),(1,5,1)  -> count 2, sum(x) 1, min 0, max 1
    //   z=3: derivation  (2,6,3)          -> count 1, sum(x) 2
    let (q, spec) = parse_aggregate_query(
        "Q(z; count, sum(x), min(x), max(x), count_distinct(x)) :- S1(x,z), S2(y,z)",
    )
    .unwrap();
    let spec = spec.unwrap();
    let s1 = mpc_skew::data::Relation::from_rows("S1", 2, &[&[0, 1], &[1, 1], &[2, 3]]);
    let s2 = mpc_skew::data::Relation::from_rows("S2", 2, &[&[5, 1], &[6, 3], &[7, 9]]);
    let db = Database::new(q.clone(), vec![s1, s2], 16).unwrap();
    let outcome = Engine::new(&q).p(4).seed(2).aggregate(spec).run(&db);
    let agg = outcome.aggregate().unwrap();
    assert_eq!(agg.num_groups(), 2);
    assert_eq!(agg.get(&[1]), Some(&[2u128, 1, 0, 1, 2][..]));
    assert_eq!(agg.get(&[3]), Some(&[1u128, 2, 2, 2, 1][..]));
    assert_eq!(agg.to_string(), "1 | 2 1 0 1 2\n3 | 1 2 2 2 1");
}
