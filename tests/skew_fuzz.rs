//! Completeness fuzzing for the skew-handling algorithms: randomized
//! multi-relation, multi-attribute skew patterns must never lose answers.

use mpc_skew::core::engine::{Algorithm, Engine};
use mpc_skew::core::hypercube::HyperCube;
use mpc_skew::core::multi_round::{run_multi_round, verify_multi_round};
use mpc_skew::core::skew_general::GeneralSkewAlgorithm;
use mpc_skew::core::skew_join::SkewJoin;
use mpc_skew::core::verify;
use mpc_skew::data::{generators, Database, Relation, Rng};
use mpc_skew::query::{named, Query};
use mpc_skew::sim::backend::Backend;
use mpc_testkit::prelude::*;

/// A randomized relation for one atom: a mix of planted heavy values on a
/// random attribute, Zipf noise, and uniform filler.
fn random_skewed_relation(
    name: &str,
    arity: usize,
    m: usize,
    n: u64,
    heavy_frac: f64,
    heavy_col: usize,
    rng: &mut Rng,
) -> Relation {
    let heavy = (m as f64 * heavy_frac) as usize;
    let mut degrees: Vec<(Vec<u64>, usize)> = Vec::new();
    if heavy > 0 {
        degrees.push((vec![rng.below(8)], heavy));
    }
    degrees.extend((0..(m - heavy) as u64).map(|i| (vec![16 + (i % (n - 16))], 1)));
    generators::from_degree_sequence(name, arity, &[heavy_col % arity], &degrees, n, rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The §4.2 general algorithm never loses answers, whatever the skew
    /// pattern, on the query suite.
    #[test]
    fn general_algorithm_completeness_fuzz(
        qi in 0usize..4,
        seed in 0u64..10_000,
        frac0 in 0.0f64..0.6,
        frac1 in 0.0f64..0.6,
        col in 0usize..2,
        p_exp in 2u32..6,
    ) {
        let queries: Vec<Query> = vec![
            named::two_way_join(),
            named::cycle(3),
            named::star(2),
            named::chain(3),
        ];
        let q = &queries[qi];
        let n = 1u64 << 9;
        let m = 600usize;
        let p = 1usize << p_exp;
        let mut rng = Rng::seed_from_u64(seed);
        let rels: Vec<Relation> = q.atoms().iter().enumerate()
            .map(|(j, a)| {
                let frac = match j {
                    0 => frac0,
                    1 => frac1,
                    _ => 0.0,
                };
                random_skewed_relation(a.name(), a.arity(), m, n, frac, col, &mut rng)
            })
            .collect();
        let db = Database::new(q.clone(), rels, n).unwrap();
        let alg = GeneralSkewAlgorithm::plan(&db, p, seed ^ 0xABCD);
        let (cluster, _) = alg.run(&db);
        let v = verify::verify(&db, &cluster);
        prop_assert!(v.is_complete(),
            "{} seed={seed} p={p} frac=({frac0:.2},{frac1:.2}) col={col}: {} missing",
            q.name(), v.missing.len());
    }

    /// The §4.1 skew join never loses answers under randomized two-sided
    /// skew, including when both sides are heavy on the same or different
    /// values.
    #[test]
    fn skew_join_completeness_fuzz(
        seed in 0u64..10_000,
        frac0 in 0.0f64..0.8,
        frac1 in 0.0f64..0.8,
        p_exp in 2u32..7,
    ) {
        let q = named::two_way_join();
        let n = 1u64 << 9;
        let m = 800usize;
        let p = 1usize << p_exp;
        let mut rng = Rng::seed_from_u64(seed);
        let s1 = random_skewed_relation("S1", 2, m, n, frac0, 1, &mut rng);
        let s2 = random_skewed_relation("S2", 2, m, n, frac1, 1, &mut rng);
        let db = Database::new(q.clone(), vec![s1, s2], n).unwrap();
        let sj = SkewJoin::plan(&db, p, seed ^ 0x1234);
        let (cluster, _) = sj.run(&db);
        let v = verify::verify(&db, &cluster);
        prop_assert!(v.is_complete(),
            "seed={seed} p={p} frac=({frac0:.2},{frac1:.2}): {} missing",
            v.missing.len());
    }

    /// Determinism regression guard: for random queries and databases,
    /// answer sets and per-server loads (the whole `LoadReport`) are
    /// invariant under the executor's thread count — `Threaded(t)` *and*
    /// the persistent-pool `Pooled(t)` are bit-identical to `Sequential`
    /// for both the §4.2 general algorithm and equal-share HyperCube.
    #[test]
    fn thread_count_invariance_fuzz(
        qi in 0usize..4,
        seed in 0u64..10_000,
        frac0 in 0.0f64..0.6,
        col in 0usize..2,
        p_exp in 2u32..6,
        threads in 2usize..9,
    ) {
        let queries: Vec<Query> = vec![
            named::two_way_join(),
            named::cycle(3),
            named::star(2),
            named::chain(3),
        ];
        let q = &queries[qi];
        let n = 1u64 << 9;
        let m = 600usize;
        let p = 1usize << p_exp;
        let mut rng = Rng::seed_from_u64(seed);
        let rels: Vec<Relation> = q.atoms().iter().enumerate()
            .map(|(j, a)| {
                let frac = if j == 0 { frac0 } else { 0.0 };
                random_skewed_relation(a.name(), a.arity(), m, n, frac, col, &mut rng)
            })
            .collect();
        let db = Database::new(q.clone(), rels, n).unwrap();

        let alg = GeneralSkewAlgorithm::plan(&db, p, seed ^ 0x7777);
        let (c_seq, r_seq) = alg.run_on(&db, Backend::Sequential);
        let (c_thr, r_thr) = alg.run_on(&db, Backend::Threaded(threads));
        prop_assert_eq!(&r_seq, &r_thr,
            "{} seed={seed} p={p} threads={threads}: general LoadReport drifted", q.name());
        prop_assert_eq!(c_seq.all_answers(q), c_thr.all_answers(q),
            "{} seed={seed} p={p} threads={threads}: general answers drifted", q.name());
        let (c_pool, r_pool) = alg.run_on(&db, Backend::Pooled(threads));
        prop_assert_eq!(&r_seq, &r_pool,
            "{} seed={seed} p={p} pool:{threads}: general LoadReport drifted", q.name());
        prop_assert_eq!(c_seq.all_answers(q), c_pool.all_answers(q),
            "{} seed={seed} p={p} pool:{threads}: general answers drifted", q.name());

        let hc = HyperCube::with_equal_shares(q, p, seed ^ 0x2222);
        let (h_seq, hr_seq) = hc.run_on(&db, Backend::Sequential);
        let (h_thr, hr_thr) = hc.run_on(&db, Backend::Threaded(threads));
        prop_assert_eq!(&hr_seq, &hr_thr,
            "{} seed={seed} p={p} threads={threads}: HC LoadReport drifted", q.name());
        prop_assert_eq!(h_seq.all_answers(q), h_thr.all_answers(q),
            "{} seed={seed} p={p} threads={threads}: HC answers drifted", q.name());
        let (h_pool, hr_pool) = hc.run_on(&db, Backend::Pooled(threads));
        prop_assert_eq!(&hr_seq, &hr_pool,
            "{} seed={seed} p={p} pool:{threads}: HC LoadReport drifted", q.name());
        prop_assert_eq!(h_seq.all_answers(q), h_pool.all_answers(q),
            "{} seed={seed} p={p} pool:{threads}: HC answers drifted", q.name());
    }

    /// The engine's auto planner never loses answers and never decides
    /// differently from the statistics: whatever skew pattern it sees, the
    /// plan it picks is complete, bit-identical across executors, and
    /// bit-identical to invoking the resolved algorithm explicitly.
    #[test]
    fn engine_auto_invariance_fuzz(
        qi in 0usize..4,
        seed in 0u64..10_000,
        frac0 in 0.0f64..0.6,
        frac1 in 0.0f64..0.6,
        col in 0usize..2,
        p_exp in 2u32..6,
        threads in 2usize..9,
    ) {
        let queries: Vec<Query> = vec![
            named::two_way_join(),
            named::cycle(3),
            named::star(2),
            named::chain(3),
        ];
        let q = &queries[qi];
        let n = 1u64 << 9;
        let m = 600usize;
        let p = 1usize << p_exp;
        let mut rng = Rng::seed_from_u64(seed);
        let rels: Vec<Relation> = q.atoms().iter().enumerate()
            .map(|(j, a)| {
                let frac = match j {
                    0 => frac0,
                    1 => frac1,
                    _ => 0.0,
                };
                random_skewed_relation(a.name(), a.arity(), m, n, frac, col, &mut rng)
            })
            .collect();
        let db = Database::new(q.clone(), rels, n).unwrap();
        let plan = Engine::new(q).p(p).seed(seed ^ 0x5A5A).plan(&db);
        let outcome = plan.execute(&db, Backend::Sequential);
        let v = outcome.verify(&db);
        prop_assert!(v.is_complete(),
            "{} seed={seed} p={p} plan={}: {} missing",
            q.name(), plan.algorithm(), v.missing.len());

        // Bit-identical to the explicitly constructed algorithm.
        let (c_exp, r_exp) = match plan.algorithm() {
            Algorithm::HyperCube => {
                let st = mpc_skew::stats::SimpleStatistics::of(&db);
                HyperCube::with_optimal_shares(q, &st, p, seed ^ 0x5A5A)
                    .run_on(&db, Backend::Sequential)
            }
            Algorithm::SkewJoin =>
                SkewJoin::plan(&db, p, seed ^ 0x5A5A).run_on(&db, Backend::Sequential),
            Algorithm::GeneralSkew =>
                GeneralSkewAlgorithm::plan(&db, p, seed ^ 0x5A5A)
                    .run_on(&db, Backend::Sequential),
            other => panic!("auto resolved to {other}"),
        };
        prop_assert_eq!(outcome.report(), Some(&r_exp),
            "{} seed={seed} p={p} plan={}: engine LoadReport drifted from explicit",
            q.name(), plan.algorithm());
        prop_assert_eq!(outcome.answers(), c_exp.all_answers(q),
            "{} seed={seed} p={p}: engine answers drifted from explicit", q.name());

        // Invariant under the executor.
        for backend in [Backend::Threaded(threads), Backend::Pooled(threads)] {
            let par = plan.execute(&db, backend);
            prop_assert_eq!(par.report(), outcome.report(),
                "{} seed={seed} p={p} [{}]: engine LoadReport drifted", q.name(), backend);
            prop_assert_eq!(par.answers(), outcome.answers(),
                "{} seed={seed} p={p} [{}]: engine answers drifted", q.name(), backend);
        }
    }

    /// Join-product-skew workloads (correlated hot values on both sides,
    /// so `|output| ≫ |inputs|`) through the auto-planned engine: the
    /// answer set stays complete and the pushed-down aggregate matches
    /// the sequential oracle fold, bit-identically on every backend.
    #[test]
    fn correlated_skew_aggregate_fuzz(
        kind in 0usize..2,
        seed in 0u64..10_000,
        hot in 1usize..6,
        fanout in 4usize..24,
        theta in 0.6f64..1.4,
        p_exp in 2u32..6,
        threads in 2usize..7,
    ) {
        use mpc_bench::workloads::{correlated_zipf_db, product_skew_db};
        use mpc_skew::core::aggregate::aggregate_oracle;
        use mpc_skew::query::parse_aggregate_query;

        let (q, spec) =
            parse_aggregate_query("Q(z; count, sum(x)) :- S1(x,z), S2(y,z)").unwrap();
        let spec = spec.unwrap();
        let n = 1u64 << 11;
        let m = 400usize;
        let p = 1usize << p_exp;
        let db = if kind == 0 {
            product_skew_db(&q, m, n, hot, fanout, seed)
        } else {
            correlated_zipf_db(&q, m, n, theta, seed)
        };
        let expected = aggregate_oracle(&db, &spec);

        let plan = Engine::new(&q)
            .p(p)
            .seed(seed ^ 0x0906)
            .aggregate(spec.clone())
            .plan(&db);
        let mut per_backend = Vec::new();
        for backend in [
            Backend::Sequential,
            Backend::Threaded(threads),
            Backend::Pooled(threads),
        ] {
            let outcome = plan.execute(&db, backend);
            let v = outcome.verify(&db);
            prop_assert!(v.is_complete(),
                "kind={kind} seed={seed} p={p} [{}] plan={}: {} answers missing",
                backend, plan.algorithm(), v.missing.len());
            prop_assert_eq!(outcome.aggregate(), Some(&expected),
                "kind={kind} seed={seed} p={p} [{}] plan={}: aggregate drifted from oracle",
                backend, plan.algorithm());
            per_backend.push(outcome.aggregate().cloned().unwrap());
        }
        prop_assert!(per_backend.windows(2).all(|w| w[0] == w[1]),
            "kind={kind} seed={seed} p={p}: aggregate not bit-identical across backends");
    }

    /// The multi-round baseline never loses answers either (it is a
    /// baseline, but a *correct* one).
    #[test]
    fn multi_round_completeness_fuzz(
        qi in 0usize..4,
        seed in 0u64..10_000,
        p_exp in 1u32..5,
    ) {
        let queries: Vec<Query> = vec![
            named::two_way_join(),
            named::cycle(3),
            named::star(2),
            named::chain(3),
        ];
        let q = &queries[qi];
        let n = 1u64 << 8;
        let m = 300usize;
        let p = 1usize << p_exp;
        let mut rng = Rng::seed_from_u64(seed);
        let rels: Vec<Relation> = q.atoms().iter()
            .map(|a| generators::uniform(a.name(), a.arity(), m, n, &mut rng))
            .collect();
        let db = Database::new(q.clone(), rels, n).unwrap();
        let result = run_multi_round(&db, p, seed);
        prop_assert!(verify_multi_round(&db, &result),
            "{} seed={seed} p={p}: multi-round lost answers", q.name());
    }
}
