//! Smoke tests for the `mpc_skew::prelude` façade: the advertised one-stop
//! imports must compile and cooperate end-to-end.

use mpc_skew::prelude::*;

#[test]
fn prelude_covers_the_quickstart_flow() {
    let query = mpc_skew::query::named::cycle(3);
    let mut rng = Rng::seed_from_u64(99);
    let rels: Vec<Relation> = query
        .atoms()
        .iter()
        .map(|a| mpc_skew::data::generators::uniform(a.name(), a.arity(), 400, 64, &mut rng))
        .collect();
    let db = Database::new(query.clone(), rels, 64).unwrap();
    let stats = SimpleStatistics::of(&db);
    let alloc = ShareAllocation::optimize(&query, &stats, 16).unwrap();
    let hc = HyperCube::new(&query, &alloc, 1);
    let (cluster, report) = hc.run(&db);
    assert!(verify(&db, &cluster).is_complete());
    assert!(report.max_load_bits() > 0);
    let (lower, _) = bounds::l_lower(&query, &stats, 16);
    assert!(lower > 0.0);
}

#[test]
fn prelude_covers_skew_and_multi_round() {
    let query = mpc_skew::query::named::two_way_join();
    let mut rng = Rng::seed_from_u64(7);
    let degrees: Vec<(Vec<u64>, usize)> = std::iter::once((vec![3u64], 256))
        .chain((0..256u64).map(|i| (vec![100 + i], 1)))
        .collect();
    let s1 =
        mpc_skew::data::generators::from_degree_sequence("S1", 2, &[1], &degrees, 1024, &mut rng);
    let s2 = mpc_skew::data::generators::matching("S2", 2, 512, 1024, &mut rng);
    let db = Database::new(query.clone(), vec![s1, s2], 1024).unwrap();

    let sj = SkewJoin::plan_with(&db, 8, 2, SkewJoinConfig::default());
    let (cluster, _) = sj.run(&db);
    assert_complete(&db, &cluster);

    let alg = GeneralSkewAlgorithm::plan(&db, 8, 2);
    let (c2, _) = alg.run(&db);
    assert_complete(&db, &c2);

    let mr = run_multi_round(&db, 8, 2);
    assert_eq!(mr.num_rounds(), 1);
    assert!(mpc_skew::core::multi_round::verify_multi_round(&db, &mr));
}

#[test]
fn prelude_covers_the_engine_surface() {
    let query = mpc_skew::query::named::two_way_join();
    let mut rng = Rng::seed_from_u64(42);
    let s1 = mpc_skew::data::generators::uniform("S1", 2, 800, 1 << 10, &mut rng);
    let s2 = mpc_skew::data::generators::uniform("S2", 2, 800, 1 << 10, &mut rng);
    let db = Database::new(query.clone(), vec![s1, s2], 1 << 10).unwrap();

    let engine = Engine::new(&query)
        .p(8)
        .seed(4)
        .backend(Backend::Sequential)
        .algorithm(Algorithm::Auto);
    let plan: Plan = engine.plan(&db);
    assert_eq!(plan.algorithm(), Algorithm::HyperCube);
    let outcome: RunOutcome = engine.run(&db);
    assert!(outcome.verify(&db).is_complete());
    assert!(outcome.predicted_load_bits() > 0.0);

    // A plan is a Router: it batches, and execute_batch agrees.
    let jobs = [(&plan, &db)];
    let batched = execute_batch(&jobs, Backend::Sequential);
    assert_eq!(batched[0].report(), outcome.report());

    // Synthetic statistics plug into the same surface.
    let st = SyntheticStats(SimpleStatistics::of(&db));
    let plan2 = Engine::new(&query).p(8).seed(4).stats(&st).plan(&db);
    assert_eq!(plan2.algorithm(), Algorithm::HyperCube);
}

#[test]
fn prelude_covers_reducer_scheduling() {
    let query = mpc_skew::query::named::cycle(3);
    let stats = SimpleStatistics::synthetic(&[2, 2, 2], vec![1 << 14; 3], 1 << 20);
    let m_bits = stats.bit_sizes[0] as f64;
    let schedule: ReducerSchedule =
        servers_for_reducer_cap(&query, &stats, m_bits / 4.0, 1 << 16).unwrap();
    assert!(schedule.p >= 2);
    assert!(schedule.predicted_load_bits <= m_bits / 4.0 + 1.0);
    let x: VarSet = VarSet::singleton(0);
    assert_eq!(x.len(), 1);
    let c: &Cluster = &{
        let hc = HyperCube::new(&query, &schedule.alloc, 5);
        let mut rng = Rng::seed_from_u64(1);
        let rels: Vec<Relation> = query
            .atoms()
            .iter()
            .map(|a| mpc_skew::data::generators::uniform(a.name(), a.arity(), 200, 32, &mut rng))
            .collect();
        let db = Database::new(query.clone(), rels, 32).unwrap();
        hc.run(&db).0
    };
    assert!(c.p() >= 2);
}
