//! Chaos suite: failpoint-injected worker panics and delays against the
//! resident service (Satellite of the fault-containment PR).
//!
//! The properties under test:
//!
//! 1. **Containment** — an injected panic at any failpoint site
//!    (`shuffle`, `merge`, `local_join`), on any backend, surfaces as
//!    `ServiceError::Internal` and nothing else: no unwinding into the
//!    caller, no torn service state.
//! 2. **Survival** — the very next query on the same service (and the
//!    same wire session) succeeds, with answers bit-identical to a run
//!    that was never injected, and plan-cache counters consistent.
//! 3. **Budgets** — a deadline expired mid-query (forced deterministic
//!    with a `delay` failpoint) returns `err timeout` and leaves the plan
//!    cache and incremental statistics untouched.
//!
//! The failpoint registry is process-global, so every test that arms it
//! serializes on [`CHAOS`] and disarms via a drop guard.

use mpc_skew::core::service::{CacheStatus, QuerySpec, Service, ServiceError};
use mpc_skew::core::wire::Session;
use mpc_skew::data::{generators, Rng};
use mpc_skew::query::parse_query;
use mpc_skew::sim::backend::Backend;
use mpc_testkit::failpoint;
use std::sync::{Mutex, MutexGuard};

static CHAOS: Mutex<()> = Mutex::new(());

/// Every in-process test body runs under this lock, baselines included:
/// the registry is process-global, so a query outside the lock could be
/// killed by a site some *other* test just armed.
fn chaos_lock() -> MutexGuard<'static, ()> {
    CHAOS.lock().unwrap_or_else(|p| p.into_inner())
}

/// Arm `spec`; disarm on drop (even when the test panics, so a failed
/// assertion cannot leak its failpoints into a neighbor). The caller must
/// already hold [`chaos_lock`].
struct Armed;

impl Armed {
    fn new(spec: &str) -> Armed {
        failpoint::configure_str(spec);
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        failpoint::clear();
    }
}

const DOMAIN: u64 = 1 << 10;

/// A service whose relations are big enough (≥ 2 shuffle chunks) that the
/// parallel backends take the pipelined shuffle — so the `merge` site
/// actually fires on them.
fn loaded_service(backend: Backend) -> Service {
    let mut rng = Rng::seed_from_u64(42);
    let mut svc = Service::new(DOMAIN)
        .with_backend(backend)
        .with_defaults(4, 1);
    svc.load(generators::uniform("S1", 2, 1500, DOMAIN, &mut rng))
        .unwrap();
    svc.load(generators::uniform("S2", 2, 1500, DOMAIN, &mut rng))
        .unwrap();
    svc
}

fn two_way() -> mpc_skew::query::Query {
    parse_query("S1(x,z), S2(y,z)").unwrap()
}

#[test]
fn injected_panics_are_contained_and_survivors_are_bit_identical() {
    // `merge` only exists on the pipelined (parallel) shuffle; the other
    // two sites fire on every backend.
    let matrix: &[(Backend, &[&str])] = &[
        (Backend::Sequential, &["shuffle", "local_join"]),
        (Backend::Pooled(4), &["shuffle", "merge", "local_join"]),
    ];
    for &(backend, sites) in matrix {
        for &site in sites {
            let _guard = chaos_lock();
            let q = two_way();
            let mut svc = loaded_service(backend);
            let baseline = svc.query(&q).expect("uninjected query");
            assert_eq!(baseline.cache_status(), CacheStatus::Miss);
            let expected = baseline.answers();

            {
                let _armed = Armed::new(&format!("{site}:panic"));
                // `shuffle`/`merge` fire during execution, `local_join`
                // during row materialization (one-round answers join
                // lazily) — both legs run behind the containment
                // boundary, so drive the full query-to-rows path.
                let err = svc
                    .query(&q)
                    .and_then(|out| out.try_answers())
                    .expect_err("injected panic must surface as an error");
                assert_eq!(
                    err,
                    ServiceError::Internal(format!("failpoint `{site}` injected panic")),
                    "{backend:?}/{site}"
                );
                assert!(failpoint::fires(site) > 0, "{site} never fired");
            }

            // Survival: same service, next query, bit-identical answers,
            // and the failed attempt still counted its cache hit.
            let after = svc.query(&q).expect("query after injected panic");
            assert_eq!(after.cache_status(), CacheStatus::Hit, "{backend:?}/{site}");
            assert_eq!(after.answers(), expected, "{backend:?}/{site}");
            let c = svc.counters();
            assert_eq!(
                (c.hits, c.misses, c.invalidations, c.evictions),
                (2, 1, 0, 0),
                "{backend:?}/{site}: counters drifted"
            );
        }
    }
}

#[test]
fn injected_delays_change_nothing_but_time() {
    let _guard = chaos_lock();
    for backend in [Backend::Sequential, Backend::Pooled(4)] {
        let q = two_way();
        let mut svc = loaded_service(backend);
        let expected = svc.query(&q).expect("uninjected query").answers();

        let armed = Armed::new("shuffle:delay:1ms,local_join:delay:1ms");
        let slow = svc.query(&q).expect("delayed query still succeeds");
        assert_eq!(slow.answers(), expected, "{backend:?}");
        assert!(failpoint::fires("local_join") > 0);
        drop(armed);
    }
}

#[test]
fn probabilistic_panics_eventually_let_a_query_through() {
    // A p < 1 panic site fires deterministically per hit counter: over
    // enough attempts both outcomes must occur, and every success must be
    // bit-identical to the uninjected baseline.
    let _guard = chaos_lock();
    let q = two_way();
    let mut svc = loaded_service(Backend::Pooled(4));
    let expected = svc.query(&q).expect("uninjected query").answers();

    let _armed = Armed::new("local_join:panic:0.2");
    let (mut failed, mut succeeded) = (0u32, 0u32);
    for _ in 0..24 {
        match svc.query(&q).and_then(|out| out.try_answers()) {
            Ok(answers) => {
                assert_eq!(answers, expected);
                succeeded += 1;
            }
            Err(e) => {
                assert!(matches!(e, ServiceError::Internal(_)), "{e}");
                failed += 1;
            }
        }
    }
    assert!(failed > 0, "p=0.2 over 24 queries never fired");
    assert!(succeeded > 0, "p=0.2 over 24 queries never let one through");
}

#[test]
fn batch_jobs_are_contained_independently() {
    let _guard = chaos_lock();
    let q = two_way();
    let mut svc = loaded_service(Backend::Pooled(4));
    let expected = svc.query(&q).expect("solo query").answers();

    // A budget-tripped job errors alone; its neighbors are untouched.
    let specs = vec![
        QuerySpec::new(q.clone()),
        QuerySpec::new(q.clone()).limit(1),
        QuerySpec::new(q.clone()),
    ];
    let results = svc.query_batch(&specs);
    assert_eq!(results[0].as_ref().unwrap().answers(), expected);
    assert_eq!(
        results[1].as_ref().unwrap_err(),
        &ServiceError::LimitExceeded("max_rows".to_string())
    );
    assert_eq!(results[2].as_ref().unwrap().answers(), expected);

    // Injected panics fail the whole armed batch — but the service
    // survives and the next (disarmed) batch is bit-identical.
    {
        let _armed = Armed::new("local_join:panic");
        for r in svc.query_batch(&specs[..1]) {
            let got = r.and_then(|out| out.try_answers());
            assert!(matches!(got, Err(ServiceError::Internal(_))), "{got:?}");
        }
    }
    let recovered = svc.query_batch(&specs[..1]);
    assert_eq!(recovered[0].as_ref().unwrap().answers(), expected);
}

#[test]
fn deadline_expiry_leaves_plan_cache_and_stats_untouched() {
    let _guard = chaos_lock();
    let q = two_way();
    let mut svc = loaded_service(Backend::Sequential);
    let baseline = svc.query(&q).expect("uninjected query");
    let expected = baseline.answers();
    let plans_before = svc.cached_plans();
    let infos_before = format!("{:?}", svc.relation_infos());

    // A 25ms injected stall against a 1ms deadline: the cooperative poll
    // right after the failpoint trips deterministically.
    let armed = Armed::new("local_join:delay:25ms");
    let spec = QuerySpec::new(q.clone()).timeout_ms(1);
    let err = svc.query_spec(&spec).expect_err("deadline must expire");
    assert_eq!(err, ServiceError::Timeout);
    drop(armed);

    // The expired query consumed nothing: same cached plan (served as a
    // hit), same counters shape, same catalog statistics.
    assert_eq!(svc.cached_plans(), plans_before);
    assert_eq!(format!("{:?}", svc.relation_infos()), infos_before);
    let c = svc.counters();
    assert_eq!((c.hits, c.misses, c.invalidations), (1, 1, 0));
    let after = svc.query(&q).expect("query after expiry");
    assert_eq!(after.cache_status(), CacheStatus::Hit);
    assert_eq!(after.answers(), expected);
}

#[test]
fn wire_session_reports_err_internal_and_keeps_serving() {
    let _guard = chaos_lock();
    let mut svc = Service::new(64)
        .with_backend(Backend::Sequential)
        .with_defaults(4, 1);
    let mut s = Session::new();
    s.handle(&mut svc, "LOAD S1 2 0,1;1,1;2,3");
    s.handle(&mut svc, "LOAD S2 2 5,1;6,3");
    // Warm the cache so pre- and post-injection replies are comparable.
    s.handle(&mut svc, "QUERY S1(x,z), S2(y,z) rows");
    let baseline = s.handle(&mut svc, "QUERY S1(x,z), S2(y,z) rows");
    assert!(baseline[0].starts_with("ok answers=3 "), "{baseline:?}");

    {
        let _armed = Armed::new("local_join:panic");
        let out = s.handle(&mut svc, "QUERY S1(x,z), S2(y,z) rows");
        assert_eq!(
            out,
            vec!["err internal failpoint `local_join` injected panic".to_string()],
            "one err line, no rows, no end marker"
        );
    }

    // Same session, same service: the next reply is byte-identical.
    let after = s.handle(&mut svc, "QUERY S1(x,z), S2(y,z) rows");
    assert_eq!(after, baseline);
    assert!(s.handle(&mut svc, "SHUTDOWN")[0].starts_with("ok bye"));
}

// ---------------------------------------------------------------------------
// End-to-end: `mpcskew serve` with env-armed failpoints
// ---------------------------------------------------------------------------

use std::io::Write;
use std::process::{Command, Stdio};

/// Run `mpcskew serve` over piped stdio with `MPCSKEW_FAILPOINTS=spec`,
/// returning all stdout lines. The child must exit successfully however
/// much was injected.
fn serve_with_failpoints(spec: &str, script: &str) -> Vec<String> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mpcskew"))
        .args([
            "serve",
            "--domain",
            "1024",
            "--p",
            "4",
            "--threads",
            "pool:2",
        ])
        .env("MPCSKEW_FAILPOINTS", spec)
        .env("RUST_BACKTRACE", "0")
        .env_remove("MPCSKEW_THREADS")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .expect("script written");
    let out = child.wait_with_output().expect("serve exits");
    assert!(
        out.status.success(),
        "serve died under failpoints `{spec}`; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::to_owned)
        .collect()
}

/// Split serve output into per-QUERY reply blocks: an `err ...` line is a
/// block of its own; an `ok ...` line followed by rows runs to `end`.
fn query_blocks(lines: &[String]) -> Vec<Vec<String>> {
    let mut blocks = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        if lines[i].starts_with("err ") {
            blocks.push(vec![lines[i].clone()]);
            i += 1;
        } else if lines[i].starts_with("ok answers=") {
            let mut block = Vec::new();
            while lines[i] != "end" {
                block.push(lines[i].clone());
                i += 1;
            }
            block.push(lines[i].clone());
            i += 1;
            blocks.push(block);
        } else {
            i += 1; // LOAD acks, `ok bye`
        }
    }
    blocks
}

#[test]
fn serve_survives_env_injected_worker_panics_bit_identically() {
    let mut rng = Rng::seed_from_u64(7);
    let mut rel = |name: &str| {
        let r = generators::uniform(name, 2, 400, 1024, &mut rng);
        let rows: Vec<String> = r.rows().map(|t| format!("{},{}", t[0], t[1])).collect();
        format!("LOAD {name} 2 {}\n", rows.join(";"))
    };
    let mut script = rel("S1");
    script.push_str(&rel("S2"));
    for _ in 0..12 {
        script.push_str("QUERY S1(x,z), S2(y,z) rows\n");
    }
    script.push_str("SHUTDOWN\n");

    let clean = serve_with_failpoints("", &script);
    let clean_blocks = query_blocks(&clean);
    assert_eq!(clean_blocks.len(), 12, "{clean_blocks:?}");
    // Uninjected rows are identical across repeats (drop the status line:
    // cache=miss flips to cache=hit after the first).
    let expected_rows = clean_blocks[0][1..].to_vec();
    for b in &clean_blocks {
        assert!(b[0].starts_with("ok answers="), "{b:?}");
        assert_eq!(b[1..], expected_rows[..]);
    }

    // Inject mid-query worker panics into the pooled local join. The
    // deterministic per-hit coin means some queries die and some survive;
    // every survivor must be bit-identical to the uninjected run, on the
    // same connection, after an earlier query was killed.
    let chaotic = serve_with_failpoints("local_join:panic:0.1", &script);
    let blocks = query_blocks(&chaotic);
    assert_eq!(blocks.len(), 12, "{blocks:?}");
    let died = blocks.iter().filter(|b| b[0].starts_with("err ")).count();
    assert!(died > 0, "p=0.1 over 12 queries x 4 servers never fired");
    assert!(died < 12, "every query died; nothing verified survival");
    let first_err = blocks
        .iter()
        .position(|b| b[0].starts_with("err "))
        .unwrap();
    assert!(
        blocks[first_err + 1..]
            .iter()
            .any(|b| b[0].starts_with("ok ")),
        "no query survived after the first injected panic"
    );
    for b in &blocks {
        if b[0].starts_with("err ") {
            assert_eq!(
                b[0], "err internal failpoint `local_join` injected panic",
                "{b:?}"
            );
        } else {
            assert_eq!(b[1..], expected_rows[..], "survivor rows drifted");
        }
    }
    assert_eq!(chaotic.last().map(String::as_str), Some("ok bye"));
}
