//! Cross-crate property tests: the paper's structural identities, checked
//! on randomized queries, statistics and data.

use mpc_skew::core::bounds;
use mpc_skew::core::hypercube::HyperCube;
use mpc_skew::core::shares::ShareAllocation;
use mpc_skew::core::skew_join::SkewJoin;
use mpc_skew::core::verify;
use mpc_skew::data::{generators, Database, Rng};
use mpc_skew::query::{named, Query};
use mpc_skew::stats::SimpleStatistics;
use mpc_testkit::prelude::*;

fn query_pool() -> Vec<Query> {
    vec![
        named::two_way_join(),
        named::cycle(3),
        named::chain(2),
        named::chain(3),
        named::star(2),
        named::star(3),
        named::cartesian(2),
        named::cartesian(3),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Theorem 3.6 as a property: for random cardinalities, the LP (5)
    /// optimum equals max_u L(u, M, p) over packing vertices.
    #[test]
    fn lp_equals_closed_form(
        qi in 0usize..8,
        log_cards in mpc_testkit::collection::vec(8u32..24, 4),
        p_exp in 2u32..10,
    ) {
        let q = &query_pool()[qi];
        let p = 1usize << p_exp;
        let cards: Vec<usize> = (0..q.num_atoms())
            .map(|j| 1usize << log_cards[j % log_cards.len()])
            .collect();
        let arities: Vec<usize> = q.atoms().iter().map(|a| a.arity()).collect();
        let st = SimpleStatistics::synthetic(&arities, cards, 1 << 24);
        let alloc = ShareAllocation::optimize(q, &st, p).unwrap();
        let lp_val = alloc.predicted_load_bits();
        let (closed, _) = bounds::l_lower(q, &st, p);
        prop_assert!(
            (lp_val - closed).abs() / closed.max(1.0) < 1e-4,
            "{}: LP {lp_val} vs closed {closed}", q.name()
        );
    }

    /// Share products never exceed p, across random budgets.
    #[test]
    fn share_budget_never_violated(
        qi in 0usize..8,
        p in 1usize..2000,
        log_m in 10u32..22,
    ) {
        let q = &query_pool()[qi];
        let arities: Vec<usize> = q.atoms().iter().map(|a| a.arity()).collect();
        let st = SimpleStatistics::synthetic(
            &arities, vec![1usize << log_m; q.num_atoms()], 1 << 24);
        let alloc = ShareAllocation::optimize(q, &st, p).unwrap();
        let product: usize = alloc.shares.iter().product();
        prop_assert!(product <= p.max(1));
        prop_assert!(alloc.shares.iter().all(|&s| s >= 1));
    }

    /// HyperCube completeness on random small instances of the join suite.
    #[test]
    fn hypercube_always_complete(
        qi in 0usize..8,
        seed in 0u64..500,
        m in 50usize..220,
        p_exp in 1u32..5,
    ) {
        let q = &query_pool()[qi];
        let n = 64u64;
        let mut rng = Rng::seed_from_u64(seed);
        let rels = q.atoms().iter()
            .map(|a| generators::uniform(a.name(), a.arity(), m, n, &mut rng))
            .collect();
        let db = Database::new(q.clone(), rels, n).unwrap();
        let st = SimpleStatistics::of(&db);
        let p = 1usize << p_exp;
        let hc = HyperCube::with_optimal_shares(q, &st, p, seed ^ 0xF00D);
        let (cluster, report) = hc.run(&db);
        let v = verify::verify(&db, &cluster);
        prop_assert!(v.is_complete(),
            "{} seed={seed} p={p}: {} missing", q.name(), v.missing.len());
        // Load sanity: no server exceeds the whole input.
        prop_assert!(report.max_load_bits() <= db.total_bits());
    }

    /// Skew join completeness on random degree sequences (including heavy
    /// hitters on both sides).
    #[test]
    fn skew_join_always_complete(
        seed in 0u64..300,
        heavy1 in 0usize..400,
        heavy2 in 0usize..400,
        light in 50usize..300,
    ) {
        let q = named::two_way_join();
        let n = 1u64 << 10;
        let mut rng = Rng::seed_from_u64(seed);
        let mk = |name: &str, heavy: usize, rng: &mut Rng| {
            let mut d: Vec<(Vec<u64>, usize)> = Vec::new();
            if heavy > 0 {
                d.push((vec![3], heavy));
            }
            d.extend((0..light).map(|i| (vec![50 + i as u64], 1)));
            generators::from_degree_sequence(name, 2, &[1], &d, n, rng)
        };
        let s1 = mk("S1", heavy1, &mut rng);
        let s2 = mk("S2", heavy2, &mut rng);
        let db = Database::new(q.clone(), vec![s1, s2], n).unwrap();
        for p in [4usize, 16] {
            let sj = SkewJoin::plan(&db, p, seed);
            let (cluster, _) = sj.run(&db);
            let v = verify::verify(&db, &cluster);
            prop_assert!(v.is_complete(),
                "seed={seed} p={p} h1={heavy1} h2={heavy2}: {} missing",
                v.missing.len());
        }
    }

    /// The replication-rate bound is monotone decreasing in the reducer
    /// size L, and at L = ΣM it is at most 1 (one reducer can take it all).
    #[test]
    fn replication_bound_monotone(qi in 0usize..8, log_m in 12u32..20) {
        let q = &query_pool()[qi];
        let arities: Vec<usize> = q.atoms().iter().map(|a| a.arity()).collect();
        let st = SimpleStatistics::synthetic(
            &arities, vec![1usize << log_m; q.num_atoms()], 1 << 24);
        let total = st.total_bits() as f64;
        let mut last = f64::INFINITY;
        for div in [64.0f64, 16.0, 4.0, 1.0] {
            let r = bounds::replication_rate_bound(q, &st, total / div);
            prop_assert!(r <= last + 1e-9, "{}: bound not monotone", q.name());
            last = r;
        }
        prop_assert!(last <= 1.0 + 1e-9, "{}: r(ΣM) = {last} > 1", q.name());
    }

    /// Corollary 3.2(ii): HyperCube's measured load never exceeds the
    /// unconditional resilience cap `Σ_j M_j / min_{i∈S_j} p_i`, on
    /// *adversarially skewed* data (single-value columns).
    #[test]
    fn hypercube_respects_resilience_cap(
        qi in 0usize..8,
        seed in 0u64..200,
        p_exp in 2u32..7,
    ) {
        let q = &query_pool()[qi];
        let n = 1u64 << 10;
        let m = 512usize;
        let p = 1usize << p_exp;
        let mut rng = Rng::seed_from_u64(seed);
        // Adversarial *set* instances (the paper's model — duplicates would
        // make concentration unavoidable for any algorithm): relations of
        // arity >= 2 concentrate one attribute on a single value with the
        // rest distinct; unary relations are distinct by definition.
        let rels = q.atoms().iter()
            .map(|a| {
                let mut r = if a.arity() >= 2 {
                    generators::single_value_column(
                        a.name(), a.arity(), m, n, 0, 7, &mut rng)
                } else {
                    generators::uniform_set(a.name(), 1, m, n, &mut rng)
                };
                r.sort_dedup();
                r
            })
            .collect();
        let db = Database::new(q.clone(), rels, n).unwrap();
        let st = SimpleStatistics::of(&db);
        let hc = HyperCube::with_equal_shares(q, p, seed ^ 0xBEEF);
        let (_, report) = hc.run(&db);
        let cap = hc.worst_case_load_bits(&st);
        prop_assert!(
            report.max_load_bits() as f64 <= cap * 1.5 + 64.0,
            "{} p={p}: measured {} above Cor 3.2(ii) cap {cap}",
            q.name(), report.max_load_bits()
        );
    }

    /// Friedgut/AGM (Section 2.3): the actual output size never exceeds the
    /// AGM bound computed from the minimum-weight fractional edge cover.
    #[test]
    fn agm_bound_holds_on_random_instances(
        qi in 0usize..8,
        seed in 0u64..200,
        m in 20usize..120,
    ) {
        let q = &query_pool()[qi];
        let n = 32u64;
        let mut rng = Rng::seed_from_u64(seed);
        let rels: Vec<mpc_skew::data::Relation> = q.atoms().iter()
            .map(|a| {
                let mut r = generators::uniform(a.name(), a.arity(), m, n, &mut rng);
                r.sort_dedup(); // AGM is a set bound
                r
            })
            .collect();
        let cards: Vec<usize> = rels.iter().map(|r| r.len()).collect();
        let db = Database::new(q.clone(), rels, n).unwrap();
        let bound = mpc_skew::query::cover::agm_bound(q, &cards).unwrap();
        let actual = mpc_skew::data::join_database_count(&db) as f64;
        prop_assert!(actual <= bound * (1.0 + 1e-9),
            "{}: |q(I)| = {actual} exceeds AGM bound {bound}", q.name());
    }

    /// The space exponent lies in [0, 1) and equals 1 - 1/τ* for equal
    /// sizes.
    #[test]
    fn space_exponent_range(qi in 0usize..8, log_m in 12u32..20) {
        let q = &query_pool()[qi];
        let arities: Vec<usize> = q.atoms().iter().map(|a| a.arity()).collect();
        let st = SimpleStatistics::synthetic(
            &arities, vec![1usize << log_m; q.num_atoms()], 1 << 24);
        let eps = bounds::space_exponent(q, &st, 64);
        prop_assert!((0.0 - 1e-9..1.0).contains(&eps), "{}: eps = {eps}", q.name());
        let tau = mpc_skew::query::max_packing_value(q).to_f64();
        prop_assert!((eps - (1.0 - 1.0 / tau)).abs() < 1e-6,
            "{}: eps {eps} vs 1 - 1/tau* {}", q.name(), 1.0 - 1.0 / tau);
    }
}
