//! Integration tests for the `mpcskew` CLI binary.

use std::process::Command;

fn mpcskew() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mpcskew"))
}

#[test]
fn bounds_command_prints_triangle_table() {
    let out = mpcskew()
        .args([
            "bounds",
            "S1(x,y), S2(y,z), S3(z,x)",
            "--cards",
            "65536,65536,65536",
            "--p",
            "64",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("tau* (max pack) : 3/2"), "{text}");
    assert!(text.contains("[0.5, 0.5, 0.5]"));
    assert!(text.contains("L_lower = L_upper"));
    assert!(text.contains("optimal shares  : [4, 4, 4]"));
}

#[test]
fn run_command_executes_and_verifies() {
    let out = mpcskew()
        .args([
            "run",
            "S1(x,z), S2(y,z)",
            "--m",
            "2000",
            "--p",
            "16",
            "--algo",
            "hc",
            "--seed",
            "3",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verification PASSED"), "{text}");
    assert!(text.contains("max load"));
}

#[test]
fn run_skew_join_on_skewed_data() {
    let out = mpcskew()
        .args([
            "run",
            "S1(x,z), S2(y,z)",
            "--m",
            "4000",
            "--p",
            "16",
            "--algo",
            "skew-join",
            "--theta",
            "1.0",
            "--seed",
            "5",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("heavy z"), "{text}");
    assert!(text.contains("verification PASSED"));
}

#[test]
fn threads_flag_selects_backend_and_output_is_invariant() {
    let run = |threads: &str| {
        let out = mpcskew()
            .args([
                "run",
                "S1(x,z), S2(y,z)",
                "--m",
                "3000",
                "--p",
                "16",
                "--algo",
                "general",
                "--theta",
                "1.2",
                "--seed",
                "7",
                "--threads",
                threads,
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let seq = run("1");
    assert!(seq.contains("backend = sequential"), "{seq}");
    assert!(seq.contains("verification PASSED"), "{seq}");
    let thr = run("4");
    assert!(thr.contains("backend = threaded(4)"), "{thr}");
    let pooled = run("pool:4");
    assert!(pooled.contains("backend = pooled(4)"), "{pooled}");
    // Identical measurements, modulo the backend banner line.
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("backend = "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&seq), strip(&thr), "output drifted across backends");
    assert_eq!(
        strip(&seq),
        strip(&pooled),
        "output drifted on the pooled backend"
    );
}

#[test]
fn bad_threads_flag_is_rejected() {
    let out = mpcskew()
        .args(["run", "S1(x,z), S2(y,z)", "--threads", "many"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--threads expects an integer"), "{err}");
}

#[test]
fn bad_query_is_rejected() {
    let out = mpcskew()
        .args(["bounds", "S1(x,", "--cards", "10"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot parse query"), "{err}");
}

#[test]
fn wrong_cardinality_count_is_rejected() {
    let out = mpcskew()
        .args(["bounds", "S1(x,z), S2(y,z)", "--cards", "10"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cardinalities"), "{err}");
}

#[test]
fn unknown_algorithm_is_rejected() {
    let out = mpcskew()
        .args(["run", "S1(x,z), S2(y,z)", "--algo", "quantum"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}
