//! Integration tests for the `mpcskew` CLI binary.

use std::process::Command;

fn mpcskew() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mpcskew"))
}

#[test]
fn bounds_command_prints_triangle_table() {
    let out = mpcskew()
        .args([
            "bounds",
            "S1(x,y), S2(y,z), S3(z,x)",
            "--cards",
            "65536,65536,65536",
            "--p",
            "64",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("tau* (max pack) : 3/2"), "{text}");
    assert!(text.contains("[0.5, 0.5, 0.5]"));
    assert!(text.contains("L_lower = L_upper"));
    assert!(text.contains("optimal shares  : [4, 4, 4]"));
}

#[test]
fn run_command_executes_and_verifies() {
    let out = mpcskew()
        .args([
            "run",
            "S1(x,z), S2(y,z)",
            "--m",
            "2000",
            "--p",
            "16",
            "--algo",
            "hc",
            "--seed",
            "3",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verification PASSED"), "{text}");
    assert!(text.contains("max load"));
}

#[test]
fn run_skew_join_on_skewed_data() {
    let out = mpcskew()
        .args([
            "run",
            "S1(x,z), S2(y,z)",
            "--m",
            "4000",
            "--p",
            "16",
            "--algo",
            "skew-join",
            "--theta",
            "1.0",
            "--seed",
            "5",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("heavy z"), "{text}");
    assert!(text.contains("verification PASSED"));
}

#[test]
fn threads_flag_selects_backend_and_output_is_invariant() {
    let run = |threads: &str| {
        let out = mpcskew()
            .args([
                "run",
                "S1(x,z), S2(y,z)",
                "--m",
                "3000",
                "--p",
                "16",
                "--algo",
                "general",
                "--theta",
                "1.2",
                "--seed",
                "7",
                "--threads",
                threads,
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let seq = run("1");
    assert!(seq.contains("backend = sequential"), "{seq}");
    assert!(seq.contains("verification PASSED"), "{seq}");
    let thr = run("4");
    assert!(thr.contains("backend = threaded(4)"), "{thr}");
    let pooled = run("pool:4");
    assert!(pooled.contains("backend = pooled(4)"), "{pooled}");
    // Identical measurements, modulo the backend banner line.
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("backend = "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&seq), strip(&thr), "output drifted across backends");
    assert_eq!(
        strip(&seq),
        strip(&pooled),
        "output drifted on the pooled backend"
    );
}

#[test]
fn auto_algo_is_default_and_picks_by_skew() {
    // Zipf(1.2) data: auto must resolve to the §4.1 skew join.
    let out = mpcskew()
        .args([
            "run",
            "S1(x,z), S2(y,z)",
            "--m",
            "4000",
            "--p",
            "16",
            "--theta",
            "1.2",
            "--seed",
            "5",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("algo   : auto"), "{text}");
    assert!(text.contains("plan   : skew-join"), "{text}");
    assert!(text.contains("heavy z"), "{text}");
    assert!(text.contains("predicted L"), "{text}");
    assert!(text.contains("verification PASSED"), "{text}");

    // Uniform data: auto must resolve to LP-optimal HyperCube.
    let out = mpcskew()
        .args(["run", "S1(x,z), S2(y,z)", "--m", "2000", "--p", "16"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("plan   : hc"), "{text}");
    assert!(text.contains("shares :"), "{text}");
}

#[test]
fn equals_form_flags_are_accepted() {
    let out = mpcskew()
        .args([
            "run",
            "S1(x,z), S2(y,z)",
            "--m=2000",
            "--p=16",
            "--algo=hc",
            "--seed=3",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verification PASSED"), "{text}");
}

#[test]
fn equals_and_space_forms_produce_identical_output() {
    let spaced = mpcskew()
        .args([
            "run",
            "S1(x,z), S2(y,z)",
            "--m",
            "1500",
            "--p",
            "8",
            "--seed",
            "9",
            "--threads",
            "1",
        ])
        .output()
        .expect("binary runs");
    let equals = mpcskew()
        .args([
            "run",
            "S1(x,z), S2(y,z)",
            "--m=1500",
            "--p=8",
            "--seed=9",
            "--threads=1",
        ])
        .output()
        .expect("binary runs");
    assert!(spaced.status.success() && equals.status.success());
    assert_eq!(spaced.stdout, equals.stdout, "flag forms drifted");
}

#[test]
fn no_verify_boolean_flag_skips_verification() {
    let out = mpcskew()
        .args([
            "run",
            "S1(x,z), S2(y,z)",
            "--m",
            "1500",
            "--p",
            "8",
            "--no-verify",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verification skipped"), "{text}");
    assert!(!text.contains("verification PASSED"), "{text}");
}

#[test]
fn help_and_no_args_print_usage_and_exit_zero() {
    for args in [vec![], vec!["--help"], vec!["run", "S1(x,z)", "--help"]] {
        let out = mpcskew().args(&args).output().expect("binary runs");
        assert!(out.status.success(), "args {args:?} should exit 0");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("usage:"), "args {args:?}: {text}");
        assert!(text.contains("auto"), "args {args:?}: {text}");
    }
}

#[test]
fn valued_flag_without_value_is_rejected() {
    let out = mpcskew()
        .args(["run", "S1(x,z), S2(y,z)", "--m"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--m is missing a value"), "{err}");
}

#[test]
fn multi_round_algo_reports_rounds() {
    let out = mpcskew()
        .args([
            "run",
            "S1(x,y), S2(y,z), S3(z,w)",
            "--m",
            "1000",
            "--p",
            "8",
            "--algo",
            "multi-round",
            "--domain",
            "4096",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("plan   : multi-round"), "{text}");
    assert!(text.contains("rounds=2"), "{text}");
    assert!(text.contains("max over 2 rounds"), "{text}");
    assert!(text.contains("verification PASSED"), "{text}");
}

#[test]
fn bad_threads_flag_is_rejected() {
    let out = mpcskew()
        .args(["run", "S1(x,z), S2(y,z)", "--threads", "many"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--threads expects an integer"), "{err}");
}

#[test]
fn bad_query_is_rejected() {
    let out = mpcskew()
        .args(["bounds", "S1(x,", "--cards", "10"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot parse query"), "{err}");
}

#[test]
fn wrong_cardinality_count_is_rejected() {
    let out = mpcskew()
        .args(["bounds", "S1(x,z), S2(y,z)", "--cards", "10"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cardinalities"), "{err}");
}

#[test]
fn unknown_algorithm_is_rejected() {
    let out = mpcskew()
        .args(["run", "S1(x,z), S2(y,z)", "--algo", "quantum"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

// ---------------------------------------------------------------------------
// `mpcskew serve`
// ---------------------------------------------------------------------------

use std::io::{BufRead, BufReader, Write};
use std::process::Stdio;

/// Run the serve protocol over piped stdin/stdout and return all reply lines.
fn serve_stdio_session(extra_args: &[&str], script: &str) -> Vec<String> {
    let mut child = mpcskew()
        .arg("serve")
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .expect("script written");
    let out = child.wait_with_output().expect("serve exits");
    assert!(
        out.status.success(),
        "serve failed; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::to_owned)
        .collect()
}

#[test]
fn serve_stdio_load_query_append_shutdown() {
    let lines = serve_stdio_session(
        &["--domain", "16", "--p", "4"],
        "LOAD S1 2 0,1;1,1;2,3\n\
         LOAD S2 2 5,1;6,3;7,9\n\
         QUERY S1(x,z), S2(y,z) rows\n\
         QUERY S1(x,z), S2(y,z)\n\
         APPEND S2 8,1\n\
         QUERY S1(x,z), S2(y,z)\n\
         STATS\n\
         SHUTDOWN\n",
    );
    let text = lines.join("\n");
    assert!(lines[0].starts_with("ok loaded S1"), "{text}");
    assert!(lines[1].starts_with("ok loaded S2"), "{text}");
    // Cold query: 3 answers, with the rows echoed sorted.
    assert!(lines[2].starts_with("ok answers=3"), "{text}");
    assert!(lines[2].contains("cache=miss"), "{text}");
    assert_eq!(&lines[3..6], &["0 1 5", "1 1 5", "2 3 6"], "{text}");
    assert_eq!(lines[6], "end", "{text}");
    // Same shape again: the plan cache serves it warm.
    assert!(lines[7].starts_with("ok answers=3"), "{text}");
    assert!(lines[7].contains("cache=hit"), "{text}");
    // Append grows the answer set without a reload.
    assert!(lines[8].starts_with("ok appended S2 +1 tuples=4"), "{text}");
    assert!(lines[9].starts_with("ok answers=5"), "{text}");
    // STATS reports the counters the session accumulated.
    assert!(
        lines
            .iter()
            .any(|l| l.starts_with("ok plans=") && l.contains("hits=1")),
        "{text}"
    );
    assert!(lines.iter().any(|l| l.starts_with("rel S1 ")), "{text}");
    assert_eq!(lines.last().map(String::as_str), Some("ok bye"), "{text}");
}

#[test]
fn serve_stdio_reports_errors_and_keeps_going() {
    let lines = serve_stdio_session(
        &["--domain", "8"],
        "APPEND Nope 1,2\n\
         LOAD S1 2 0,9\n\
         LOAD S1 2 0,1\n\
         QUERY S1(x,z)\n\
         SHUTDOWN\n",
    );
    let text = lines.join("\n");
    // The exact not-loaded message is part of the wire contract: clients
    // match on it to distinguish "load first" from parse errors.
    assert_eq!(lines[0], "err relation `Nope` is not loaded", "{text}");
    assert!(lines[1].starts_with("err "), "{text}"); // 9 out of domain [8]
    assert!(lines[2].starts_with("ok loaded S1"), "{text}");
    assert!(lines[3].starts_with("ok answers=1"), "{text}");
    assert_eq!(lines.last().map(String::as_str), Some("ok bye"), "{text}");
}

#[test]
fn serve_tcp_shares_catalog_and_plan_cache_across_clients() {
    use std::net::TcpStream;

    let mut child = mpcskew()
        .args([
            "serve",
            "--domain",
            "16",
            "--p",
            "4",
            "--listen",
            "127.0.0.1:0",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    // The first stdout line announces the bound address.
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("banner line");
    let addr = banner
        .trim()
        .strip_prefix("listening on ")
        .expect("banner format")
        .to_owned();

    let talk = |script: &str, replies: usize| -> Vec<String> {
        let stream = TcpStream::connect(&addr).expect("client connects");
        let mut writer = stream.try_clone().expect("stream clones");
        writer.write_all(script.as_bytes()).expect("script sent");
        BufReader::new(stream)
            .lines()
            .take(replies)
            .map(|l| l.expect("reply line"))
            .collect()
    };

    // Client 1 loads the catalog and plans the query (a cache miss).
    let first = talk(
        "LOAD S1 2 0,1;1,1;2,3\n\
         LOAD S2 2 5,1;6,3;7,9\n\
         QUERY S1(x,z), S2(y,z)\n",
        3,
    );
    assert!(first[2].starts_with("ok answers=3"), "{first:?}");
    assert!(first[2].contains("cache=miss"), "{first:?}");

    // Client 2 sees the same catalog and hits the cached plan.
    // Client 2 drains every reply to EOF: it sends SHUTDOWN, and the
    // server closes the connection once the session is done.
    let second = {
        let stream = TcpStream::connect(&addr).expect("client connects");
        let mut writer = stream.try_clone().expect("stream clones");
        writer
            .write_all(b"QUERY S1(x,z), S2(y,z)\nSTATS\nSHUTDOWN\n")
            .expect("script sent");
        BufReader::new(stream)
            .lines()
            .map(|l| l.expect("reply line"))
            .collect::<Vec<String>>()
    };
    assert!(second[0].starts_with("ok answers=3"), "{second:?}");
    assert!(second[0].contains("cache=hit"), "{second:?}");
    assert!(second[1].contains("hits=1"), "{second:?}");
    assert!(second[1].contains("relations=2"), "{second:?}");
    assert_eq!(
        second.last().map(String::as_str),
        Some("ok bye"),
        "{second:?}"
    );

    // SHUTDOWN from client 2 stops the whole server.
    let out = child.wait_with_output().expect("serve exits");
    assert!(
        out.status.success(),
        "serve failed; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn serve_pins_the_unsupported_error_vocabulary() {
    // End-to-end: an aggregate head forced onto a multi-round plan is
    // refused with a typed `err unsupported` line, and the session keeps
    // serving afterwards.
    let lines = serve_stdio_session(
        &["--domain", "16", "--p", "4"],
        "LOAD S1 2 0,1;1,1\n\
         LOAD S2 2 5,1\n\
         QUERY \"Q(; count) :- S1(x,z), S2(y,z)\" algo=multi-round\n\
         QUERY S1(x,z), S2(y,z)\n\
         SHUTDOWN\n",
    );
    assert_eq!(
        lines[2],
        "err unsupported invalid aggregate: `multi-round` does not materialize \
         each join derivation exactly once; aggregates need a derivation-partitioning plan",
        "{lines:?}"
    );
    assert!(lines[3].starts_with("ok answers=2"), "{lines:?}");
    assert_eq!(lines.last().map(String::as_str), Some("ok bye"));

    // The `JoinIndex` u32 row-id overflow cannot be provoked end-to-end
    // (it needs > 4B rows), so pin the wire rendering of the error the
    // service classifier maps it to: the exact line a client would read.
    use mpc_skew::core::service::ServiceError;
    let e = ServiceError::Unsupported(
        "relation \"S1\" has 5000000000 rows, which exceeds the u32 row-id space of JoinIndex"
            .to_string(),
    );
    assert_eq!(
        format!("err {e}"),
        "err unsupported relation \"S1\" has 5000000000 rows, \
         which exceeds the u32 row-id space of JoinIndex"
    );
}

/// Spawn `mpcskew serve --listen 127.0.0.1:0`, read the banner, and hand
/// back the child plus the bound address.
fn serve_tcp_child(extra_args: &[&str]) -> (std::process::Child, String) {
    let mut child = mpcskew()
        .args([
            "serve",
            "--domain",
            "16",
            "--p",
            "4",
            "--listen",
            "127.0.0.1:0",
        ])
        .args(extra_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("banner line");
    let addr = banner
        .trim()
        .strip_prefix("listening on ")
        .expect("banner format")
        .to_owned();
    (child, addr)
}

#[test]
fn serve_tcp_survives_client_disconnects() {
    use std::net::TcpStream;

    let (child, addr) = serve_tcp_child(&[]);

    // Client 1 drops mid-line: a partial command with no newline, then
    // the socket closes. The listener must shrug it off.
    {
        let mut s = TcpStream::connect(&addr).expect("client connects");
        s.write_all(b"QUERY S1(x").expect("partial line sent");
    }

    // Client 2 loads the catalog, then drops mid-response: it reads only
    // the status line of a `rows` reply and hangs up before the rows.
    {
        let stream = TcpStream::connect(&addr).expect("client connects");
        let mut writer = stream.try_clone().expect("stream clones");
        writer
            .write_all(
                b"LOAD S1 2 0,1;1,1;2,3\n\
                  LOAD S2 2 5,1;6,3;7,9\n\
                  QUERY S1(x,z), S2(y,z) rows\n",
            )
            .expect("script sent");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        for _ in 0..3 {
            line.clear();
            reader.read_line(&mut line).expect("reply line");
        }
        assert!(line.starts_with("ok answers=3"), "{line}");
        // Drop here: the server is (or was) mid-way through writing rows.
    }

    // A fresh client still gets the shared catalog and the cached plan,
    // proving neither disconnect tore down the listener or the service.
    let survivor = {
        let stream = TcpStream::connect(&addr).expect("client connects");
        let mut writer = stream.try_clone().expect("stream clones");
        writer
            .write_all(b"QUERY S1(x,z), S2(y,z)\nSHUTDOWN\n")
            .expect("script sent");
        BufReader::new(stream)
            .lines()
            .map(|l| l.expect("reply line"))
            .collect::<Vec<String>>()
    };
    assert!(survivor[0].starts_with("ok answers=3"), "{survivor:?}");
    assert!(survivor[0].contains("cache=hit"), "{survivor:?}");
    assert_eq!(survivor.last().map(String::as_str), Some("ok bye"));

    let out = child.wait_with_output().expect("serve exits");
    assert!(
        out.status.success(),
        "serve failed; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn serve_tcp_sheds_load_beyond_max_clients() {
    use std::net::TcpStream;
    use std::time::Duration;

    let (child, addr) = serve_tcp_child(&["--max-clients", "1"]);

    // Occupy the single slot; the echoed STATS reply proves the session
    // thread is registered before anyone else connects.
    let holder = TcpStream::connect(&addr).expect("holder connects");
    let mut writer = holder.try_clone().expect("stream clones");
    writer.write_all(b"STATS\n").expect("script sent");
    let mut reader = BufReader::new(holder.try_clone().expect("stream clones"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("stats reply");
    assert!(line.starts_with("ok plans="), "{line}");

    // The next client is shed with one typed line, then disconnected.
    let shed = {
        let stream = TcpStream::connect(&addr).expect("extra client connects");
        BufReader::new(stream)
            .lines()
            .map(|l| l.expect("reply line"))
            .collect::<Vec<String>>()
    };
    assert_eq!(shed, vec!["err overloaded 1 active clients (max 1)"]);

    // Release the slot; the freed capacity must become visible (slot
    // release races the next accept, so poll until SHUTDOWN lands).
    drop(writer);
    drop(reader);
    drop(holder);
    let mut said_bye = false;
    for _ in 0..200 {
        let stream = TcpStream::connect(&addr).expect("client connects");
        let mut w = stream.try_clone().expect("stream clones");
        w.write_all(b"SHUTDOWN\n").expect("script sent");
        let mut r = BufReader::new(stream);
        let mut reply = String::new();
        r.read_line(&mut reply).expect("reply line");
        if reply.starts_with("ok bye") {
            said_bye = true;
            break;
        }
        assert!(reply.starts_with("err overloaded"), "{reply}");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(said_bye, "slot never freed after holder disconnected");

    let out = child.wait_with_output().expect("serve exits");
    assert!(
        out.status.success(),
        "serve failed; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
