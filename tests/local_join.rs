//! Regression suite for the cardinality-guided local join on *locally*
//! skewed subcubes.
//!
//! HyperCube routing provably balances skew **across** servers, but each
//! server's own fragment of a Zipf-skewed database is still skewed — the
//! heavy values land somewhere, and the server that receives them used to
//! pay a quadratic blow-up under the fixed greedy atom order. These tests
//! route a locally-skewed triangle (`x2` Zipf-hot in both S1 and S2,
//! aligned on the same heavy values) through HyperCube, pull out each
//! server's fragments, and pin the dynamic engine's visited-bindings
//! probe at or below the fixed baseline on every single server — with
//! bit-identical answers, on every backend.

use mpc_skew::data::generators;
use mpc_skew::data::join::{self, JoinOrder};
use mpc_skew::data::Relation;
use mpc_skew::prelude::*;
use mpc_skew::query::named;

/// The aligned local-skew triangle: `x2` (column 1 of S1, column 0 of S2)
/// Zipf(θ)-hot with value 0 heaviest on both sides; S3 uniform.
fn zipf_triangle(m: usize, n: u64, theta: f64, seed: u64) -> Database {
    let q = named::cycle(3);
    let mut rng = Rng::seed_from_u64(seed);
    let s1 = generators::zipf_column("S1", 2, m, n, 1, theta, &mut rng);
    let s2 = generators::zipf_column("S2", 2, m, n, 0, theta, &mut rng);
    let s3 = generators::uniform("S3", 2, m, n, &mut rng);
    Database::new(q, vec![s1, s2, s3], n).expect("valid zipf triangle")
}

/// Run one order over one server's fragments: the expanded answer
/// multiset (sorted) plus the engine's visited-bindings count.
fn run_fragment(q: &Query, rels: &[&Relation], order: JoinOrder) -> (Vec<Vec<u64>>, u64) {
    let mut answers: Vec<Vec<u64>> = Vec::new();
    let stats = join::join_foreach_mult(q, rels, order, |row, mult| {
        for _ in 0..mult {
            answers.push(row.to_vec());
        }
    });
    answers.sort();
    (answers, stats.bindings_visited)
}

/// On every server of a HyperCube round over the locally-skewed triangle,
/// the dynamic order visits no more bindings than the fixed baseline and
/// produces the identical answer multiset; summed over the cluster it
/// visits strictly fewer — the skew win survives HyperCube partitioning.
#[test]
fn dynamic_order_dominates_fixed_on_every_skewed_fragment() {
    let q = named::cycle(3);
    let db = zipf_triangle(4000, 256, 1.2, 17);
    let stats = SimpleStatistics::of(&db);
    let alloc = ShareAllocation::optimize(&q, &stats, 8).expect("share LP solves");
    let hc = HyperCube::new(&q, &alloc, 1);
    let (cluster, _) = hc.run(&db);
    assert!(verify(&db, &cluster).is_complete());

    let (mut dyn_total, mut fixed_total) = (0u64, 0u64);
    for server in 0..cluster.p() {
        let rels: Vec<&Relation> = (0..q.num_atoms())
            .map(|a| cluster.fragment(a, server))
            .collect();
        let (dyn_rows, dyn_visited) = run_fragment(&q, &rels, JoinOrder::Dynamic);
        let (fixed_rows, fixed_visited) = run_fragment(&q, &rels, JoinOrder::Fixed);
        assert_eq!(dyn_rows, fixed_rows, "answer mismatch on server {server}");
        assert!(
            dyn_visited <= fixed_visited,
            "server {server}: dynamic visited {dyn_visited} > fixed {fixed_visited}"
        );
        dyn_total += dyn_visited;
        fixed_total += fixed_visited;
    }
    assert!(
        dyn_total < fixed_total,
        "no cluster-wide win: dynamic {dyn_total} vs fixed {fixed_total}"
    );
}

/// The full HyperCube round over the skewed triangle is complete (the
/// oracle runs the fixed order, so this is a dynamic-vs-fixed end-to-end
/// differential) and bit-identical across all three backends.
#[test]
fn skewed_triangle_answers_are_backend_identical() {
    let q = named::cycle(3);
    let db = zipf_triangle(2000, 128, 1.2, 23);
    let stats = SimpleStatistics::of(&db);
    let alloc = ShareAllocation::optimize(&q, &stats, 8).expect("share LP solves");
    let hc = HyperCube::new(&q, &alloc, 1);

    let mut baseline: Option<Vec<Vec<u64>>> = None;
    for backend in [
        Backend::Sequential,
        Backend::Threaded(4),
        Backend::Pooled(4),
    ] {
        let (cluster, _) = hc.run_on(&db, backend);
        assert!(
            verify(&db, &cluster).is_complete(),
            "{backend:?} incomplete"
        );
        let rows = cluster.all_answers(&q).to_nested();
        match &baseline {
            None => baseline = Some(rows),
            Some(b) => assert_eq!(b, &rows, "{backend:?} diverges"),
        }
    }
}

/// The global visited-bindings probe is what `bench_join.rs` exports as
/// `bindings_per_iter`: it must advance by exactly the per-call stats.
#[test]
fn visited_probe_matches_per_call_stats() {
    let q = named::cycle(3);
    let db = zipf_triangle(500, 64, 1.0, 5);
    let rels: Vec<&Relation> = db.relations().iter().map(|r| r.as_ref()).collect();
    for order in [JoinOrder::Dynamic, JoinOrder::Fixed] {
        let before = join::visited_bindings_total();
        let stats = join::join_foreach_mult(&q, &rels, order, |_, _| {});
        assert!(stats.bindings_visited > 0);
        assert!(join::visited_bindings_total() >= before + stats.bindings_visited);
    }
}
