//! Planner-choice parity between statistics sources: sketch-backed
//! planning must pick the same algorithm as exact statistics on every
//! standard distribution, degrade only in the pinned conservative
//! direction (HyperCube → SkewJoin, never the reverse) on adversarial
//! near-threshold data, and produce bit-identical answers always —
//! statistics error shifts load, never answers.

use mpc_skew::core::engine::{
    sketch_capacity, Algorithm, Engine, ExactStats, SketchStats, Stats, StatsMode,
};
use mpc_skew::core::service::Service;
use mpc_skew::data::{generators, Database, Relation, Rng};
use mpc_skew::query::{named, parse_query};
use mpc_skew::sim::backend::Backend;

const BACKENDS: [Backend; 3] = [
    Backend::Sequential,
    Backend::Threaded(2),
    Backend::Pooled(4),
];

const P: usize = 16;
const SEED: u64 = 11;

/// The standard (non-adversarial) workload matrix of the planner-choice
/// tier: on these, sketch and exact statistics must agree exactly.
fn standard_scenarios() -> Vec<(&'static str, Database, Algorithm)> {
    let q = named::two_way_join();
    let n = 1u64 << 10;
    let mut out = Vec::new();

    {
        let mut rng = Rng::seed_from_u64(0xBEEF_0001);
        let s1 = generators::uniform("S1", 2, 2000, n, &mut rng);
        let s2 = generators::uniform("S2", 2, 2000, n, &mut rng);
        out.push((
            "uniform",
            Database::new(q.clone(), vec![s1, s2], n).unwrap(),
            Algorithm::HyperCube,
        ));
    }

    {
        let mut rng = Rng::seed_from_u64(0xBEEF_0002);
        let d1 = generators::zipf_degrees(1800, n, 1.2);
        let d2 = generators::zipf_degrees(1800, n, 1.2);
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &d1, n, &mut rng);
        let s2 = generators::from_degree_sequence("S2", 2, &[1], &d2, n, &mut rng);
        out.push((
            "zipf_1.2",
            Database::new(q.clone(), vec![s1, s2], n).unwrap(),
            Algorithm::SkewJoin,
        ));
    }

    {
        let n = 1u64 << 12;
        let mut rng = Rng::seed_from_u64(0xBEEF_0003);
        let m = 2048usize;
        let degrees: Vec<(Vec<u64>, usize)> = std::iter::once((vec![9u64], m / 2))
            .chain((0..(m / 2) as u64).map(|i| (vec![100 + (i % 900)], 1)))
            .collect();
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &degrees, n, &mut rng);
        let s2 = generators::matching("S2", 2, m, n, &mut rng);
        out.push((
            "single_heavy_hitter",
            Database::new(q.clone(), vec![s1, s2], n).unwrap(),
            Algorithm::SkewJoin,
        ));
    }

    {
        let mut rng = Rng::seed_from_u64(0xBEEF_0004);
        let s1 = Relation::new("S1", 2);
        let s2 = generators::uniform("S2", 2, 1500, n, &mut rng);
        out.push((
            "empty_relation",
            Database::new(q.clone(), vec![s1, s2], n).unwrap(),
            Algorithm::HyperCube,
        ));
    }

    out
}

/// Adversarial near-threshold workload: every frequent z sits within a few
/// tuples of the heaviness threshold `m/p`, and the projection has far
/// more distinct values than the sketch's capacity — the worst case for a
/// SpaceSaving summary, built to force its error intervals to straddle the
/// threshold.
fn adversarial_near_threshold() -> Database {
    let q = named::two_way_join();
    let n = 1u64 << 12;
    let mut rng = Rng::seed_from_u64(0xBEEF_0005);
    // m = 4096 → threshold m/P = 256. Four keys just above (257), four at
    // exactly the threshold (256: light under the strict `>`), singletons
    // filling the rest — ~2000 distinct values >> capacity 2P = 32.
    let mut degrees: Vec<(Vec<u64>, usize)> = Vec::new();
    for k in 0..4u64 {
        degrees.push((vec![k], 257));
    }
    for k in 4..8u64 {
        degrees.push((vec![k], 256));
    }
    let planted: usize = degrees.iter().map(|(_, c)| c).sum();
    let m = 4096usize;
    degrees.extend((0..(m - planted) as u64).map(|i| (vec![1000 + i], 1)));
    let s1 = generators::from_degree_sequence("S1", 2, &[1], &degrees, n, &mut rng);
    let s2 = generators::uniform("S2", 2, m, n, &mut rng);
    Database::new(q, vec![s1, s2], n).unwrap()
}

fn plan_pair(db: &Database) -> (Algorithm, Algorithm) {
    let exact = Engine::new(db.query()).p(P).seed(SEED).plan(db);
    let sketch = Engine::new(db.query())
        .p(P)
        .seed(SEED)
        .stats_mode(StatsMode::Sketch)
        .plan(db);
    (exact.algorithm(), sketch.algorithm())
}

#[test]
fn sketch_picks_match_exact_on_standard_distributions() {
    for (name, db, expected) in standard_scenarios() {
        let (exact_pick, sketch_pick) = plan_pair(&db);
        assert_eq!(exact_pick, expected, "{name}: exact pick drifted");
        assert_eq!(
            sketch_pick, exact_pick,
            "{name}: sketch pick diverged from exact"
        );
    }
}

#[test]
fn answers_are_bit_identical_under_every_stats_source() {
    let mut all = standard_scenarios();
    all.push(("adversarial", adversarial_near_threshold(), Algorithm::Auto));
    for (name, db, _) in &all {
        let exact_plan = Engine::new(db.query()).p(P).seed(SEED).plan(db);
        let sketch_plan = Engine::new(db.query())
            .p(P)
            .seed(SEED)
            .stats_mode(StatsMode::Sketch)
            .plan(db);
        let baseline = exact_plan.execute(db, Backend::Sequential).answers();
        for backend in BACKENDS {
            assert_eq!(
                sketch_plan.execute(db, backend).answers(),
                baseline,
                "{name} [{backend}]: answers depend on the stats source"
            );
        }
    }
}

#[test]
fn adversarial_near_threshold_errs_only_toward_skew_handling() {
    // The pinned conservative-fallback rule: when a SpaceSaving interval
    // straddles m/p, the key counts as heavy. So on near-threshold data
    // the sketch may upgrade HyperCube to SkewJoin — load shifts within
    // the paper's constants — but it must never report a genuinely skewed
    // database as skew-free.
    let db = adversarial_near_threshold();
    let (exact_pick, sketch_pick) = plan_pair(&db);
    if sketch_pick != exact_pick {
        assert_eq!(
            (exact_pick, sketch_pick),
            (Algorithm::HyperCube, Algorithm::SkewJoin),
            "sketch error moved the pick in the non-conservative direction"
        );
    }
    // This workload has true heavy hitters (257 > 256), so both sources
    // must see the skew here; the conservative direction is what the
    // assertion above pins for *any* near-threshold variant.
    assert_eq!(exact_pick, Algorithm::SkewJoin);
    assert_eq!(sketch_pick, Algorithm::SkewJoin);
}

#[test]
fn sketch_heavy_hitters_cover_exact_heavy_hitters_everywhere() {
    // Capacity >= p ⇒ SpaceSaving cannot miss a true m/p-heavy hitter;
    // checked across the full matrix including the adversarial case.
    let mut all = standard_scenarios();
    all.push(("adversarial", adversarial_near_threshold(), Algorithm::Auto));
    for (name, db, _) in &all {
        let exact = ExactStats::of(db);
        let sketch = SketchStats::of(db, sketch_capacity(P));
        for atom in 0..db.query().num_atoms() {
            let truth = exact.heavy_hitters(atom, &[1], P);
            let est = sketch.heavy_hitters(atom, &[1], P);
            for t in &truth {
                assert!(
                    est.iter().any(|e| e.key == t.key),
                    "{name}: sketch missed exact heavy hitter {:?} of atom {atom}",
                    t.key
                );
            }
        }
    }
}

#[test]
fn sketch_service_answers_match_exact_service_across_appends() {
    // End-to-end through the resident service: identical answer streams
    // in both modes while ingest folds into sketches vs exact maps.
    let n = 1u64 << 10;
    let build = |mode: StatsMode| {
        let mut rng = Rng::seed_from_u64(0xBEEF_0006);
        let mut svc = Service::new(n)
            .with_backend(Backend::Sequential)
            .with_defaults(P, SEED)
            .with_stats_mode(mode);
        let d1 = generators::zipf_degrees(1500, n, 1.2);
        svc.load(generators::from_degree_sequence(
            "S1",
            2,
            &[1],
            &d1,
            n,
            &mut rng,
        ))
        .unwrap();
        svc.load(generators::uniform("S2", 2, 1500, n, &mut rng))
            .unwrap();
        svc
    };
    let mut exact = build(StatsMode::Exact);
    let mut sketch = build(StatsMode::Sketch);
    assert_eq!(exact.stats_mode(), StatsMode::Exact);
    assert_eq!(sketch.stats_mode(), StatsMode::Sketch);
    assert!(exact.sketch_telemetry().is_none());
    assert!(sketch.sketch_telemetry().unwrap().bytes > 0);

    let q = parse_query("S1(x,z), S2(y,z)").unwrap();
    for round in 0..4 {
        let a = exact.query(&q).unwrap().answers();
        let b = sketch.query(&q).unwrap().answers();
        assert_eq!(a, b, "round {round}: service answers diverged");
        let batch: Vec<u64> = (0..32u64).flat_map(|i| [i, (7 * i + round) % 64]).collect();
        exact.append("S2", &batch).unwrap();
        sketch.append("S2", &batch).unwrap();
    }
}
