//! Integration tests for the resident [`Service`]: cache correctness.
//!
//! Two properties the plan cache must never trade away:
//!
//! 1. **Differential** — ingest-then-query through the service is
//!    bit-identical to a fresh `Database` + `Engine::run` over the same
//!    tuples, on every backend, including after `append` rounds that keep
//!    cached plans warm.
//! 2. **Staleness** — when appended tuples push a join value across the
//!    `m_j / p` heavy threshold, the cached plan is invalidated and the
//!    replan flips `Algorithm::Auto`'s pick (HyperCube → skew join), with
//!    the invalidation visible in the counters.

use mpc_skew::core::engine::{Algorithm, Engine};
use mpc_skew::core::service::{CacheStatus, QuerySpec, Service};
use mpc_skew::data::{generators, AnswerSet, Database, Relation, Rng};
use mpc_skew::query::{parse_query, Query};
use mpc_skew::sim::backend::Backend;

/// Ground truth: build a fresh database from scratch (full rescan, exact
/// stats, no cache) and run the engine once.
fn fresh_run(
    q: &Query,
    rels: &[Relation],
    domain: u64,
    p: usize,
    backend: Backend,
) -> (Algorithm, AnswerSet) {
    let db = Database::new(q.clone(), rels.to_vec(), domain).expect("valid db");
    let plan = Engine::new(q).p(p).seed(1).plan(&db);
    let out = plan.execute(&db, backend);
    (out.algorithm(), out.answers())
}

#[test]
fn ingest_then_query_matches_fresh_build_across_backends() {
    let q = parse_query("S1(x,z), S2(y,z)").expect("query parses");
    let domain = 1u64 << 12;
    let p = 16;
    let mut rng = Rng::seed_from_u64(7);
    let s1 = generators::zipf_column("S1", 2, 800, domain, 1, 1.1, &mut rng);
    let s2 = generators::uniform("S2", 2, 600, domain, &mut rng);

    for backend in [
        Backend::Sequential,
        Backend::Threaded(2),
        Backend::Pooled(4),
    ] {
        let mut svc = Service::new(domain)
            .with_backend(backend)
            .with_defaults(p, 1);
        svc.load(s1.clone()).expect("load S1");
        svc.load(s2.clone()).expect("load S2");

        let mut rels = vec![s1.clone(), s2.clone()];
        let mut append_rng = Rng::seed_from_u64(99);
        for round in 0..4 {
            let got = svc.query(&q).expect("service query");
            let (want_algo, want) = fresh_run(&q, &rels, domain, p, backend);
            assert_eq!(
                got.answers(),
                want,
                "round {round}, backend {backend}: service answers diverge from fresh build"
            );
            assert_eq!(
                got.algorithm(),
                want_algo,
                "round {round}, backend {backend}: memoized stats picked a different algorithm"
            );

            // Grow S2 in place; mirror the tuples into the fresh-build copy.
            let extra: Vec<u64> = (0..80).map(|_| append_rng.below(domain)).collect();
            svc.append("S2", &extra).expect("append S2");
            rels[1].push_rows(&extra);
        }
    }
}

#[test]
fn batch_queries_match_serial_and_fresh_build() {
    let q1 = parse_query("S1(x,z), S2(y,z)").expect("query parses");
    let q2 = parse_query("S1(x,y), S2(y,z)").expect("query parses");
    let domain = 1u64 << 10;
    let p = 8;
    let mut rng = Rng::seed_from_u64(21);
    let s1 = generators::uniform("S1", 2, 400, domain, &mut rng);
    let s2 = generators::uniform("S2", 2, 400, domain, &mut rng);
    let rels = vec![s1.clone(), s2.clone()];

    let mut svc = Service::new(domain)
        .with_backend(Backend::Pooled(4))
        .with_defaults(p, 1);
    svc.load(s1).expect("load S1");
    svc.load(s2).expect("load S2");

    let specs = [
        QuerySpec::new(q1.clone()),
        QuerySpec::new(q2.clone()),
        QuerySpec::new(q1.clone()),
    ];
    let outcomes: Vec<_> = svc
        .query_batch(&specs)
        .into_iter()
        .map(|r| r.expect("batch query runs"))
        .collect();
    assert_eq!(outcomes.len(), 3);
    for (spec, out) in [&q1, &q2, &q1].into_iter().zip(&outcomes) {
        let (_, want) = fresh_run(spec, &rels, domain, p, Backend::Sequential);
        assert_eq!(out.answers(), want, "batch answer diverges for {spec}");
    }
    // The third spec repeats the first's shape: same plan, served warm.
    assert_eq!(outcomes[2].cache_status(), CacheStatus::Hit);
}

/// Appending tuples that cross the heavy threshold must invalidate the
/// cached plan and flip Auto's pick; appends that stay light must not.
#[test]
fn stale_plan_invalidation_fires_on_heavy_threshold_crossing() {
    let q = parse_query("S1(x,z), S2(y,z)").expect("query parses");
    let domain = 1u64 << 16;
    let p = 8;

    // 1100 tuples each, every z distinct: max frequency 1 <= m/p = 137.5,
    // so the join is skew-free and Auto picks HyperCube.
    let light = |name: &str, offset: u64| {
        let mut data = Vec::with_capacity(2 * 1100);
        for i in 0..1100u64 {
            data.push(offset + i);
            data.push(i);
        }
        Relation::from_flat(name, 2, data)
    };
    let mut svc = Service::new(domain)
        .with_backend(Backend::Sequential)
        .with_defaults(p, 1);
    svc.load(light("S1", 40_000)).expect("load S1");
    svc.load(light("S2", 50_000)).expect("load S2");

    let first = svc.query(&q).expect("cold query");
    assert_eq!(first.cache_status(), CacheStatus::Miss);
    assert_eq!(first.algorithm(), Algorithm::HyperCube);

    // A light append: 50 fresh distinct z values. The cardinality bucket
    // (2048) and the (empty) heavy set are unchanged, so the cached plan
    // stays warm.
    let fresh: Vec<u64> = (0..50u64).flat_map(|i| [60_000 + i, 2_000 + i]).collect();
    svc.append("S2", &fresh).expect("light append");
    let warm = svc.query(&q).expect("warm query");
    assert_eq!(warm.cache_status(), CacheStatus::Hit);
    assert_eq!(warm.algorithm(), Algorithm::HyperCube);
    assert_eq!(svc.counters().invalidations, 0);

    // A skewed append: 200 copies of z = 7. Now m_2 = 1350, the threshold
    // is 168.75, and freq(z = 7) = 201 > 168.75 — z = 7 turns heavy while
    // the cardinality bucket still reads 2048. Only the changed heavy
    // membership can (and must) invalidate the plan.
    let skewed: Vec<u64> = (0..200u64).flat_map(|i| [61_000 + i, 7]).collect();
    svc.append("S2", &skewed).expect("skewed append");
    assert_eq!(
        svc.counters().invalidations,
        1,
        "heavy-threshold crossing must invalidate the cached plan"
    );

    let replanned = svc.query(&q).expect("replanned query");
    assert_ne!(replanned.cache_status(), CacheStatus::Hit);
    assert_eq!(
        replanned.algorithm(),
        Algorithm::SkewJoin,
        "Auto must flip to the skew join once z = 7 is heavy"
    );

    // And the replanned answers still agree with a from-scratch build.
    let mut s1 = light("S1", 40_000);
    let mut s2 = light("S2", 50_000);
    let _ = &mut s1; // S1 untouched
    s2.push_rows(&fresh);
    s2.push_rows(&skewed);
    let (want_algo, want) = fresh_run(&q, &[s1, s2], domain, p, Backend::Sequential);
    assert_eq!(want_algo, Algorithm::SkewJoin);
    assert_eq!(replanned.answers(), want);

    // Counter book-keeping: 2 misses (cold + replan), 1 hit, 1 invalidation.
    let c = svc.counters();
    assert_eq!((c.misses, c.hits, c.invalidations), (2, 1, 1));
}
