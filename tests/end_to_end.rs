//! End-to-end integration tests: every algorithm, on every workload class,
//! must find exactly the sequential join's answers, and measured loads must
//! respect the paper's bound relationships.

use mpc_skew::core::baselines::{FragmentReplicateRouter, HashJoinRouter};
use mpc_skew::core::bounds;
use mpc_skew::core::hypercube::HyperCube;
use mpc_skew::core::shares::ShareAllocation;
use mpc_skew::core::skew_general::GeneralSkewAlgorithm;
use mpc_skew::core::skew_join::SkewJoin;
use mpc_skew::core::verify;
use mpc_skew::data::{generators, Database, Rng};
use mpc_skew::query::{named, Query, VarSet};
use mpc_skew::sim::cluster::Cluster;
use mpc_skew::stats::SimpleStatistics;

fn uniform_db(q: &Query, m: usize, n: u64, seed: u64) -> Database {
    let mut rng = Rng::seed_from_u64(seed);
    let rels = q
        .atoms()
        .iter()
        .map(|a| generators::uniform(a.name(), a.arity(), m, n, &mut rng))
        .collect();
    Database::new(q.clone(), rels, n).unwrap()
}

fn matching_db(q: &Query, m: usize, n: u64, seed: u64) -> Database {
    let mut rng = Rng::seed_from_u64(seed);
    let rels = q
        .atoms()
        .iter()
        .map(|a| generators::matching(a.name(), a.arity(), m, n, &mut rng))
        .collect();
    Database::new(q.clone(), rels, n).unwrap()
}

#[test]
fn hypercube_complete_on_query_suite() {
    let suite: Vec<(Query, usize, u64)> = vec![
        (named::two_way_join(), 1500, 1 << 10),
        (named::cycle(3), 1500, 1 << 7),
        (named::chain(3), 1500, 1 << 8),
        (named::star(3), 1500, 1 << 8),
        (named::cartesian(2), 300, 1 << 10),
        (named::cycle(4), 800, 1 << 7),
        (named::chain(4), 800, 1 << 7),
    ];
    for (q, m, n) in suite {
        let db = uniform_db(&q, m, n, 0xA11CE);
        let st = SimpleStatistics::of(&db);
        for p in [4usize, 16, 64] {
            let hc = HyperCube::with_optimal_shares(&q, &st, p, 13);
            let (cluster, _) = hc.run(&db);
            verify::assert_complete(&db, &cluster);
        }
    }
}

#[test]
fn equal_share_hypercube_complete_on_suite() {
    for q in [named::cycle(3), named::two_way_join(), named::chain(3)] {
        let db = uniform_db(&q, 1000, 1 << 8, 7);
        let hc = HyperCube::with_equal_shares(&q, 32, 3);
        let (cluster, _) = hc.run(&db);
        verify::assert_complete(&db, &cluster);
    }
}

fn check_skew_algorithms_at(m: usize, thetas: &[f64]) {
    let q = named::two_way_join();
    let n = 1u64 << 12;
    for &theta in thetas {
        let mut rng = Rng::seed_from_u64(100 + (theta * 4.0) as u64);
        let d1 = generators::zipf_degrees(m, n, theta);
        let d2 = generators::zipf_degrees(m, n, theta);
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &d1, n, &mut rng);
        let s2 = generators::from_degree_sequence("S2", 2, &[1], &d2, n, &mut rng);
        let db = Database::new(q.clone(), vec![s1, s2], n).unwrap();
        let p = 16usize;

        let sj = SkewJoin::plan(&db, p, 5);
        let (c1, _) = sj.run(&db);
        verify::assert_complete(&db, &c1);

        let alg = GeneralSkewAlgorithm::plan(&db, p, 5);
        let (c2, _) = alg.run(&db);
        verify::assert_complete(&db, &c2);
    }
}

#[test]
fn skew_algorithms_complete_across_zipf_exponents() {
    // Moderate cardinality across the full exponent sweep. The heavy-output
    // extreme (large m at theta >= 1.5, where |q(I)| grows with the square
    // of the top frequency) lives in the #[ignore]d test below so `cargo
    // test -q` stays fast.
    check_skew_algorithms_at(1200, &[0.0, 0.5, 1.0, 1.5, 2.0]);
}

#[test]
#[ignore = "heavy-output stress case; run by `./ci.sh` (full mode) via --ignored"]
fn skew_algorithms_complete_extreme_zipf() {
    // The seed's original full-size workload: every exponent at m = 3000.
    check_skew_algorithms_at(3000, &[0.0, 0.5, 1.0, 1.5, 2.0]);
}

#[test]
fn load_ordering_under_heavy_skew() {
    // skew join <= HC equal-shares << hash join on a heavily skewed input.
    let q = named::two_way_join();
    let n = 1u64 << 12;
    let m = 6000usize;
    let p = 32usize;
    let mut rng = Rng::seed_from_u64(31);
    let d = generators::zipf_degrees(m, n, 1.4);
    let s1 = generators::from_degree_sequence("S1", 2, &[1], &d, n, &mut rng);
    let s2 = generators::from_degree_sequence("S2", 2, &[1], &d, n, &mut rng);
    let db = Database::new(q.clone(), vec![s1, s2], n).unwrap();

    let z = q.var_index("z").unwrap();
    let hj = HashJoinRouter::new(&q, VarSet::singleton(z), p, 4);
    let hash_load = Cluster::run_round(&db, p, &hj).report().max_load_tuples();

    let hc = HyperCube::with_equal_shares(&q, p, 4);
    let (_, hc_rep) = hc.run(&db);

    let sj = SkewJoin::plan(&db, p, 4);
    let (_, sj_rep) = sj.run(&db);

    assert!(
        sj_rep.max_load_tuples() < hash_load,
        "skew join {} !< hash join {}",
        sj_rep.max_load_tuples(),
        hash_load
    );
    assert!(
        hc_rep.max_load_tuples() < hash_load,
        "HC-equal {} !< hash join {}",
        hc_rep.max_load_tuples(),
        hash_load
    );
    // The skew join should beat or match resilient-HC on this workload.
    assert!(
        sj_rep.max_load_tuples() <= hc_rep.max_load_tuples() * 2,
        "skew join {} unexpectedly dominated by HC {}",
        sj_rep.max_load_tuples(),
        hc_rep.max_load_tuples()
    );
}

#[test]
fn measured_load_never_beats_lower_bound() {
    // No correct algorithm can receive fewer bits than L_lower (up to the
    // constant c < 1; we check with constant 1/4 slack).
    for q in [named::cycle(3), named::two_way_join(), named::chain(3)] {
        let db = matching_db(&q, 4000, 1 << 14, 17);
        let st = SimpleStatistics::of(&db);
        for p in [8usize, 64] {
            let (lower, _) = bounds::l_lower(&q, &st, p);
            let hc = HyperCube::with_optimal_shares(&q, &st, p, 3);
            let (cluster, report) = hc.run(&db);
            verify::assert_complete(&db, &cluster);
            assert!(
                report.max_load_bits() as f64 >= lower / 4.0,
                "{} p={p}: measured {} below lower bound {lower}",
                q.name(),
                report.max_load_bits()
            );
        }
    }
}

#[test]
fn broadcast_join_matches_footnote_1() {
    // With M2 <= M1/p, broadcasting S2 costs at most ~2x the scan bound
    // M1/p per server.
    let q = named::two_way_join();
    let n = 1u64 << 12;
    let p = 16usize;
    let mut rng = Rng::seed_from_u64(23);
    let s1 = generators::uniform("S1", 2, 8000, n, &mut rng);
    let s2 = generators::uniform("S2", 2, 8000 / p / 2, n, &mut rng);
    let db = Database::new(q.clone(), vec![s1, s2], n).unwrap();
    let router = FragmentReplicateRouter::new(p, 1, 5);
    let cluster = Cluster::run_round(&db, p, &router);
    verify::assert_complete(&db, &cluster);
    let report = cluster.report();
    let scan = db.bit_sizes()[0] as f64 / p as f64;
    assert!(
        (report.max_load_bits() as f64) < 2.5 * scan,
        "broadcast join load {} above 2.5x scan bound {scan}",
        report.max_load_bits()
    );
}

#[test]
fn general_algorithm_handles_triangle_and_star() {
    for q in [named::cycle(3), named::star(2)] {
        let n = 1u64 << 9;
        let m = 1200usize;
        let mut rng = Rng::seed_from_u64(97);
        // One skewed relation, rest uniform.
        let mut rels = Vec::new();
        for (j, a) in q.atoms().iter().enumerate() {
            if j == 0 {
                let d = generators::zipf_degrees(m, n, 1.1);
                rels.push(generators::from_degree_sequence(
                    a.name(),
                    a.arity(),
                    &[1],
                    &d,
                    n,
                    &mut rng,
                ));
            } else {
                rels.push(generators::uniform(a.name(), a.arity(), m, n, &mut rng));
            }
        }
        let db = Database::new(q.clone(), rels, n).unwrap();
        let alg = GeneralSkewAlgorithm::plan(&db, 16, 19);
        let (cluster, _) = alg.run(&db);
        verify::assert_complete(&db, &cluster);
    }
}

#[test]
fn share_allocation_is_deterministic_and_budgeted() {
    let q = named::cycle(3);
    for cards in [[1usize << 12; 3], [1 << 16, 1 << 12, 1 << 8]] {
        let arities = [2usize, 2, 2];
        let st = SimpleStatistics::synthetic(&arities, cards.to_vec(), 1 << 20);
        for p in [2usize, 5, 17, 64, 1000] {
            let a1 = ShareAllocation::optimize(&q, &st, p).unwrap();
            let a2 = ShareAllocation::optimize(&q, &st, p).unwrap();
            assert_eq!(a1.shares, a2.shares);
            let product: usize = a1.shares.iter().product();
            assert!(product <= p, "p={p}: shares {:?}", a1.shares);
        }
    }
}
