//! Cross-backend differential oracle suite.
//!
//! A shared scenario matrix (uniform / Zipf / single heavy hitter / empty
//! relation / all-duplicates) is run through every algorithm (HyperCube
//! LP-optimal and equal-shares, the §4.1 skew join, the §4.2 general
//! algorithm, and the hash-join / fragment-replicate / broadcast
//! baselines), asserting two things for each (scenario, algorithm) cell:
//!
//! 1. **oracle equality** — the distributed answer set equals the
//!    sequential `mpc_data::join` of the input;
//! 2. **backend determinism** — `Sequential`, `Threaded(2)`, `Threaded(8)`,
//!    and the persistent-pool `Pooled(4)` produce identical answer sets
//!    *and* identical [`LoadReport`]s (exact per-server equality), i.e.
//!    every parallel executor is bit-identical to the sequential one.

use mpc_skew::core::baselines::{FragmentReplicateRouter, HashJoinRouter};
use mpc_skew::core::engine::{Engine, Plan};
use mpc_skew::core::hypercube::HyperCube;
use mpc_skew::core::multi_round::run_multi_round_on;
use mpc_skew::core::skew_general::GeneralSkewAlgorithm;
use mpc_skew::core::skew_join::SkewJoin;
use mpc_skew::data::{generators, Database, Relation, Rng};
use mpc_skew::query::{named, VarSet};
use mpc_skew::sim::backend::Backend;
use mpc_skew::sim::cluster::{BroadcastRouter, Cluster, Router};
use mpc_skew::sim::load::LoadReport;

/// The backends the acceptance matrix requires (`Threaded(1)` is covered
/// separately by `threaded_one_matches_sequential`). `Pooled(4)` runs on
/// the shared persistent pool, so the whole matrix doubles as a pool-reuse
/// soak: one worker set serves every (scenario, algorithm) cell.
const BACKENDS: [Backend; 4] = [
    Backend::Sequential,
    Backend::Threaded(2),
    Backend::Threaded(8),
    Backend::Pooled(4),
];

/// The scenario matrix over the two-way join `S1(x,z) ⋈ S2(y,z)`. Sizes
/// are chosen so the threaded shuffle genuinely shards (> 512-tuple
/// chunks) without making the oracle join expensive.
fn scenarios() -> Vec<(&'static str, Database)> {
    let q = named::two_way_join();
    let n = 1u64 << 10;
    let mut out = Vec::new();

    // Uniform: no skew at all.
    {
        let mut rng = Rng::seed_from_u64(0xD1FF_0001);
        let s1 = generators::uniform("S1", 2, 2000, n, &mut rng);
        let s2 = generators::uniform("S2", 2, 2000, n, &mut rng);
        out.push((
            "uniform",
            Database::new(q.clone(), vec![s1, s2], n).unwrap(),
        ));
    }

    // Zipf(1.2) on z on both sides.
    {
        let mut rng = Rng::seed_from_u64(0xD1FF_0002);
        let d1 = generators::zipf_degrees(1800, n, 1.2);
        let d2 = generators::zipf_degrees(1800, n, 1.2);
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &d1, n, &mut rng);
        let s2 = generators::from_degree_sequence("S2", 2, &[1], &d2, n, &mut rng);
        out.push(("zipf", Database::new(q.clone(), vec![s1, s2], n).unwrap()));
    }

    // Single heavy hitter: one z value carries half of S1, S2 is a matching
    // (matchings need m <= n, hence the wider domain).
    {
        let n = 1u64 << 12;
        let mut rng = Rng::seed_from_u64(0xD1FF_0003);
        let m = 2048usize;
        let degrees: Vec<(Vec<u64>, usize)> = std::iter::once((vec![9u64], m / 2))
            .chain((0..(m / 2) as u64).map(|i| (vec![100 + (i % 900)], 1)))
            .collect();
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &degrees, n, &mut rng);
        let s2 = generators::matching("S2", 2, m, n, &mut rng);
        out.push((
            "single_heavy_hitter",
            Database::new(q.clone(), vec![s1, s2], n).unwrap(),
        ));
    }

    // Empty relation: S1 has no tuples, so there are no answers.
    {
        let mut rng = Rng::seed_from_u64(0xD1FF_0004);
        let s1 = Relation::new("S1", 2);
        let s2 = generators::uniform("S2", 2, 1500, n, &mut rng);
        out.push((
            "empty_relation",
            Database::new(q.clone(), vec![s1, s2], n).unwrap(),
        ));
    }

    // All duplicates: every tuple of each relation is the same row, and the
    // shared z matches — maximal duplication on one answer (heavy on both
    // sides, so the skew join's H12 grid is exercised too). 600 copies:
    // enough for the threaded shuffle to shard, while keeping the
    // broadcast baseline's quadratic per-server output (600²·p) tame.
    {
        let mut s1 = Relation::new("S1", 2);
        let mut s2 = Relation::new("S2", 2);
        for _ in 0..600 {
            s1.push(&[3, 7]);
            s2.push(&[5, 7]);
        }
        out.push((
            "all_duplicates",
            Database::new(q.clone(), vec![s1, s2], n).unwrap(),
        ));
    }

    out
}

/// Sequential ground truth.
fn oracle(db: &Database) -> mpc_skew::data::AnswerSet {
    let mut ans = mpc_skew::data::join_database(db);
    ans.sort_dedup();
    ans
}

/// Run `router` over every backend; assert oracle equality (`expected` is
/// the precomputed sequential join) and exact cross-backend equality of
/// answers and reports.
fn check_router(
    tag: &str,
    db: &Database,
    expected: &mpc_skew::data::AnswerSet,
    p: usize,
    router: &(impl Router + Sync),
) {
    let mut baseline: Option<(mpc_skew::data::AnswerSet, LoadReport)> = None;
    for backend in BACKENDS {
        let cluster = Cluster::run_round_on(db, p, router, backend);
        let answers = cluster.all_answers(db.query());
        let report = cluster.report();
        assert_eq!(&answers, expected, "{tag} [{backend}]: oracle mismatch");
        match &baseline {
            None => baseline = Some((answers, report)),
            Some((a0, r0)) => {
                assert_eq!(
                    &answers, a0,
                    "{tag} [{backend}]: answers differ from Sequential"
                );
                assert_eq!(
                    &report, r0,
                    "{tag} [{backend}]: LoadReport differs from Sequential"
                );
            }
        }
    }
}

#[test]
fn scenario_matrix_times_algorithms_is_deterministic_and_complete() {
    let p = 16usize;
    for (name, db) in scenarios() {
        let q = db.query().clone();
        let st = mpc_skew::stats::SimpleStatistics::of(&db);
        let z = q.var_index("z").unwrap();
        let expected = oracle(&db);

        let hc = HyperCube::with_optimal_shares(&q, &st, p, 11);
        check_router(&format!("{name}/hypercube_optimal"), &db, &expected, p, &hc);

        let hce = HyperCube::with_equal_shares(&q, p, 11);
        check_router(&format!("{name}/hypercube_equal"), &db, &expected, p, &hce);

        let sj = SkewJoin::plan(&db, p, 11);
        check_router(&format!("{name}/skew_join"), &db, &expected, p, &sj);

        let general = GeneralSkewAlgorithm::plan(&db, p, 11);
        check_router(&format!("{name}/general_skew"), &db, &expected, p, &general);

        let hj = HashJoinRouter::new(&q, VarSet::singleton(z), p, 11);
        check_router(&format!("{name}/hash_join"), &db, &expected, p, &hj);

        let fr = FragmentReplicateRouter::new(p, 1, 11);
        check_router(
            &format!("{name}/fragment_replicate"),
            &db,
            &expected,
            p,
            &fr,
        );

        check_router(
            &format!("{name}/broadcast"),
            &db,
            &expected,
            p,
            &BroadcastRouter { p },
        );
    }
}

#[test]
fn multi_round_is_backend_invariant_on_the_matrix() {
    let p = 8usize;
    for (name, db) in scenarios() {
        let expected = oracle(&db);
        let seq = run_multi_round_on(&db, p, 5, Backend::Sequential);
        assert_eq!(seq.answers, expected, "{name}: multi-round lost answers");
        for backend in [
            Backend::Threaded(2),
            Backend::Threaded(8),
            Backend::Pooled(4),
        ] {
            let thr = run_multi_round_on(&db, p, 5, backend);
            assert_eq!(thr.answers, seq.answers, "{name} [{backend}]");
            assert_eq!(thr.num_rounds(), seq.num_rounds(), "{name} [{backend}]");
            for (a, b) in seq.rounds.iter().zip(&thr.rounds) {
                assert_eq!(a.max_load_bits, b.max_load_bits, "{name} [{backend}]");
                assert_eq!(
                    a.intermediate_tuples, b.intermediate_tuples,
                    "{name} [{backend}]"
                );
            }
        }
    }
}

#[test]
fn pooled_matrix_reuses_one_worker_set() {
    // Every Pooled(4) cell above runs on the process-wide pool; this pins
    // the lifecycle claim directly: ≥3 consecutive rounds (different
    // scenarios and algorithms) spawn no new threads.
    let pool = mpc_skew::sim::pool::global(4);
    let spawned = pool.spawn_count();
    assert_eq!(spawned, 4, "the shared pool has exactly its worker set");
    let p = 16usize;
    for (round, (name, db)) in scenarios().into_iter().enumerate().take(3) {
        let sj = SkewJoin::plan(&db, p, 11);
        let (c_seq, r_seq) = sj.run_on(&db, Backend::Sequential);
        let (c_pool, r_pool) = sj.run_on(&db, Backend::Pooled(4));
        assert_eq!(r_seq, r_pool, "{name}");
        assert_eq!(
            c_seq.all_answers(db.query()),
            c_pool.all_answers(db.query()),
            "{name}"
        );
        assert_eq!(
            pool.spawn_count(),
            spawned,
            "round {round} ({name}) spawned threads"
        );
    }
}

#[test]
fn parallel_oracle_matches_sequential_on_the_matrix() {
    // The hash-partitioned parallel ground-truth join must agree with the
    // sequential oracle on every scenario, for every backend that might
    // compute it during verification.
    for (name, db) in scenarios() {
        let expected = oracle(&db);
        for backend in BACKENDS {
            assert_eq!(
                mpc_skew::sim::oracle::join_database_on(&db, backend),
                expected,
                "{name} [{backend}]"
            );
        }
    }
}

#[test]
fn batch_submission_matches_per_round_execution() {
    // Cluster::run_batch parallelizes across rounds; its per-job results
    // must equal running each round alone, whatever executor the batch is
    // on. Jobs are built from engine plans (a `Plan` is a `Router`), the
    // post-PR-4 shape every batch call site uses.
    let dbs: Vec<(&'static str, mpc_skew::data::Database)> = scenarios();
    let p = 16usize;
    let plans: Vec<Plan> = dbs
        .iter()
        .map(|(_, db)| Engine::new(db.query()).p(p).seed(11).plan(db))
        .collect();
    let jobs: Vec<mpc_skew::sim::BatchJob> = dbs
        .iter()
        .zip(&plans)
        .map(|((_, db), plan)| plan.batch_job(db))
        .collect();
    let expected: Vec<(mpc_skew::data::AnswerSet, LoadReport)> = dbs
        .iter()
        .zip(&plans)
        .map(|((_, db), plan)| {
            let c = Cluster::run_round_on(db, p, plan, Backend::Sequential);
            (c.all_answers(db.query()), c.report())
        })
        .collect();
    for backend in BACKENDS {
        let results = Cluster::run_batch(&jobs, backend);
        assert_eq!(results.len(), dbs.len(), "{backend}");
        for (i, ((cluster, report), (exp_answers, exp_report))) in
            results.iter().zip(&expected).enumerate()
        {
            let (name, db) = &dbs[i];
            assert_eq!(report, exp_report, "{name} report [{backend}]");
            assert_eq!(
                &cluster.all_answers(db.query()),
                exp_answers,
                "{name} [{backend}]"
            );
        }
    }
}

#[test]
fn threaded_one_matches_sequential() {
    // Threaded(1) is the degenerate threaded configuration; it must take
    // the same fast path and produce the same bits.
    let (_, db) = scenarios().remove(1);
    let p = 16usize;
    let sj = SkewJoin::plan(&db, p, 3);
    let (c_seq, r_seq) = sj.run_on(&db, Backend::Sequential);
    let (c_one, r_one) = sj.run_on(&db, Backend::Threaded(1));
    assert_eq!(r_seq, r_one);
    assert_eq!(c_seq.all_answers(db.query()), c_one.all_answers(db.query()));
}

#[test]
fn triangle_differential_beyond_two_atoms() {
    // The matrix above is two-atom (so the skew join applies everywhere);
    // cover a 3-atom query for the algorithms that support it.
    let q = named::cycle(3);
    let n = 1u64 << 7;
    let mut rng = Rng::seed_from_u64(0xD1FF_0005);
    let d = generators::zipf_degrees(1500, n, 1.0);
    let mut rels = vec![generators::from_degree_sequence(
        "S1",
        2,
        &[1],
        &d,
        n,
        &mut rng,
    )];
    for a in ["S2", "S3"] {
        rels.push(generators::uniform(a, 2, 1500, n, &mut rng));
    }
    let db = Database::new(q.clone(), rels, n).unwrap();
    let p = 16usize;
    let st = mpc_skew::stats::SimpleStatistics::of(&db);

    let expected = oracle(&db);
    let hc = HyperCube::with_optimal_shares(&q, &st, p, 7);
    check_router("triangle/hypercube_optimal", &db, &expected, p, &hc);

    let general = GeneralSkewAlgorithm::plan(&db, p, 7);
    check_router("triangle/general_skew", &db, &expected, p, &general);
}
