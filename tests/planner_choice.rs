//! Planner-choice differential tests: `Engine::auto` must pick the
//! expected algorithm for each workload shape, and its execution must be
//! bit-identical — answers *and* `LoadReport` — to invoking that algorithm
//! explicitly, on every backend.

use mpc_skew::core::engine::{Algorithm, Engine, Plan};
use mpc_skew::core::hypercube::HyperCube;
use mpc_skew::core::multi_round::run_multi_round_on;
use mpc_skew::core::skew_general::GeneralSkewAlgorithm;
use mpc_skew::core::skew_join::SkewJoin;
use mpc_skew::data::{generators, Database, Relation, Rng};
use mpc_skew::query::named;
use mpc_skew::sim::backend::Backend;
use mpc_skew::stats::SimpleStatistics;

const BACKENDS: [Backend; 3] = [
    Backend::Sequential,
    Backend::Threaded(2),
    Backend::Pooled(4),
];

const P: usize = 16;
const SEED: u64 = 11;

/// The planner scenario matrix over the two-way join: each workload with
/// the algorithm `auto` must resolve to.
fn scenarios() -> Vec<(&'static str, Database, Algorithm)> {
    let q = named::two_way_join();
    let n = 1u64 << 10;
    let mut out = Vec::new();

    // Uniform: skew-free, so the LP-optimal HyperCube.
    {
        let mut rng = Rng::seed_from_u64(0xBEEF_0001);
        let s1 = generators::uniform("S1", 2, 2000, n, &mut rng);
        let s2 = generators::uniform("S2", 2, 2000, n, &mut rng);
        out.push((
            "uniform",
            Database::new(q.clone(), vec![s1, s2], n).unwrap(),
            Algorithm::HyperCube,
        ));
    }

    // Zipf(1.2) on z on both sides: heavy hitters on the join variable,
    // two atoms — the §4.1 skew join.
    {
        let mut rng = Rng::seed_from_u64(0xBEEF_0002);
        let d1 = generators::zipf_degrees(1800, n, 1.2);
        let d2 = generators::zipf_degrees(1800, n, 1.2);
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &d1, n, &mut rng);
        let s2 = generators::from_degree_sequence("S2", 2, &[1], &d2, n, &mut rng);
        out.push((
            "zipf",
            Database::new(q.clone(), vec![s1, s2], n).unwrap(),
            Algorithm::SkewJoin,
        ));
    }

    // Single heavy hitter: one z value carries half of S1.
    {
        let n = 1u64 << 12;
        let mut rng = Rng::seed_from_u64(0xBEEF_0003);
        let m = 2048usize;
        let degrees: Vec<(Vec<u64>, usize)> = std::iter::once((vec![9u64], m / 2))
            .chain((0..(m / 2) as u64).map(|i| (vec![100 + (i % 900)], 1)))
            .collect();
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &degrees, n, &mut rng);
        let s2 = generators::matching("S2", 2, m, n, &mut rng);
        out.push((
            "single_heavy_hitter",
            Database::new(q.clone(), vec![s1, s2], n).unwrap(),
            Algorithm::SkewJoin,
        ));
    }

    // Empty relation: no tuples, no heavy hitters — HyperCube.
    {
        let mut rng = Rng::seed_from_u64(0xBEEF_0004);
        let s1 = Relation::new("S1", 2);
        let s2 = generators::uniform("S2", 2, 1500, n, &mut rng);
        out.push((
            "empty_relation",
            Database::new(q.clone(), vec![s1, s2], n).unwrap(),
            Algorithm::HyperCube,
        ));
    }

    out
}

/// Run the explicitly-constructed algorithm `expected` with the same
/// `(p, seed)` the engine used and assert the engine outcome is
/// bit-identical on `backend`.
fn assert_matches_explicit(
    tag: &str,
    db: &Database,
    plan: &Plan,
    expected: Algorithm,
    backend: Backend,
) {
    let q = db.query();
    let (explicit_cluster, explicit_report) = match expected {
        Algorithm::HyperCube => {
            let st = SimpleStatistics::of(db);
            HyperCube::with_optimal_shares(q, &st, P, SEED).run_on(db, backend)
        }
        Algorithm::SkewJoin => SkewJoin::plan(db, P, SEED).run_on(db, backend),
        Algorithm::GeneralSkew => GeneralSkewAlgorithm::plan(db, P, SEED).run_on(db, backend),
        other => panic!("unexpected explicit algorithm {other}"),
    };
    let outcome = plan.execute(db, backend);
    assert_eq!(
        outcome.report(),
        Some(&explicit_report),
        "{tag} [{backend}]: engine LoadReport differs from explicit"
    );
    assert_eq!(
        outcome.answers(),
        explicit_cluster.all_answers(q),
        "{tag} [{backend}]: engine answers differ from explicit"
    );
}

fn oracle(db: &Database) -> mpc_skew::data::AnswerSet {
    let mut ans = mpc_skew::data::join_database(db);
    ans.sort_dedup();
    ans
}

#[test]
fn auto_picks_the_expected_plan_and_matches_explicit_execution() {
    for (name, db, expected) in scenarios() {
        let engine = Engine::new(db.query()).p(P).seed(SEED);
        let plan = engine.plan(&db);
        assert_eq!(
            plan.algorithm(),
            expected,
            "{name}: auto picked {} instead of {expected}",
            plan.algorithm()
        );
        assert!(
            plan.predicted_load_bits() >= 0.0 && plan.predicted_load_bits().is_finite(),
            "{name}: predicted load must be finite"
        );
        let expected_answers = oracle(&db);
        for backend in BACKENDS {
            assert_matches_explicit(name, &db, &plan, expected, backend);
            let outcome = plan.execute(&db, backend);
            assert_eq!(
                outcome.answers(),
                expected_answers,
                "{name} [{backend}]: oracle mismatch"
            );
        }
    }
}

#[test]
fn auto_picks_general_skew_on_skewed_triangle() {
    // Beyond two atoms, skew must route to the §4.2 general algorithm.
    let q = named::cycle(3);
    let n = 1u64 << 7;
    let mut rng = Rng::seed_from_u64(0xBEEF_0005);
    let d = generators::zipf_degrees(1500, n, 1.0);
    let mut rels = vec![generators::from_degree_sequence(
        "S1",
        2,
        &[1],
        &d,
        n,
        &mut rng,
    )];
    for a in ["S2", "S3"] {
        rels.push(generators::uniform(a, 2, 1500, n, &mut rng));
    }
    let db = Database::new(q.clone(), rels, n).unwrap();
    let plan = Engine::new(&q).p(P).seed(SEED).plan(&db);
    assert_eq!(plan.algorithm(), Algorithm::GeneralSkew);
    for backend in BACKENDS {
        assert_matches_explicit("triangle_zipf", &db, &plan, Algorithm::GeneralSkew, backend);
    }
}

#[test]
fn predicted_load_is_reported_next_to_measured() {
    // The acceptance shape: every plan carries its predicted L(u, M, p)
    // and the outcome pairs it with the measured LoadReport.
    for (name, db, _) in scenarios() {
        let plan = Engine::new(db.query()).p(P).seed(SEED).plan(&db);
        let outcome = plan.execute(&db, Backend::Sequential);
        assert_eq!(outcome.predicted_load_bits(), plan.predicted_load_bits());
        assert_eq!(outcome.lower_bound_bits(), plan.lower_bound_bits());
        let report = outcome.report().expect("one-round plan");
        assert_eq!(report.max_load_bits(), outcome.max_load_bits(), "{name}");
        // The prediction is a real number of bits on non-empty inputs.
        if db.relations().iter().all(|r| !r.is_empty()) {
            assert!(
                plan.predicted_load_bits() > 0.0,
                "{name}: predicted load is zero"
            );
            assert!(plan.lower_bound_bits() > 0.0, "{name}: lower bound is zero");
        }
    }
}

#[test]
fn engine_multi_round_is_bit_identical_to_direct_invocation() {
    for (name, db, _) in scenarios() {
        let engine = Engine::new(db.query())
            .p(8)
            .seed(SEED)
            .algorithm(Algorithm::MultiRound);
        let plan = engine.plan(&db);
        let direct = run_multi_round_on(&db, 8, SEED, Backend::Sequential);
        for backend in BACKENDS {
            let outcome = plan.execute(&db, backend);
            let mr = outcome.multi_round().expect("multi-round outcome");
            assert_eq!(mr.answers, direct.answers, "{name} [{backend}]");
            assert_eq!(mr.num_rounds(), direct.num_rounds(), "{name} [{backend}]");
            for (a, b) in mr.rounds.iter().zip(&direct.rounds) {
                assert_eq!(a.max_load_bits, b.max_load_bits, "{name} [{backend}]");
                assert_eq!(
                    a.intermediate_tuples, b.intermediate_tuples,
                    "{name} [{backend}]"
                );
            }
        }
    }
}

#[test]
fn every_explicit_algorithm_is_backend_invariant_through_the_engine() {
    // The engine surface itself must be deterministic across executors
    // for every algorithm, not just the auto picks.
    let (_, db, _) = scenarios().remove(1); // zipf
    for algo in Algorithm::all() {
        let plan = Engine::new(db.query())
            .p(8)
            .seed(3)
            .algorithm(algo)
            .plan(&db);
        let baseline = plan.execute(&db, Backend::Sequential);
        for backend in [Backend::Threaded(2), Backend::Pooled(4)] {
            let outcome = plan.execute(&db, backend);
            assert_eq!(
                outcome.answers(),
                baseline.answers(),
                "{algo} [{backend}]: answers drifted"
            );
            assert_eq!(
                outcome.report(),
                baseline.report(),
                "{algo} [{backend}]: LoadReport drifted"
            );
            assert_eq!(outcome.max_load_bits(), baseline.max_load_bits());
        }
    }
}
